//! Per-sequencer execution state.

use misp_types::{Cycles, OsThreadId, SequencerId, ShredId};

/// The execution state of one simulated sequencer.
///
/// A sequencer is either *idle* (no shred installed), *running* (a shred is
/// installed and a completion event is pending), or *suspended* (execution
/// paused by the platform — e.g. an AMS suspended while its OMS executes in
/// Ring 0, or a thread context-switched away).  Suspension is orthogonal to
/// having a shred installed: a suspended sequencer remembers how much of its
/// in-flight operation remained so it can be resumed precisely.
#[derive(Debug, Clone)]
pub struct SequencerState {
    id: SequencerId,
    /// The shred currently installed on this sequencer, if any.
    current_shred: Option<ShredId>,
    /// The OS thread whose context this sequencer is currently serving.
    bound_thread: Option<OsThreadId>,
    suspended: bool,
    /// Remaining cycles of the in-flight operation captured at suspension.
    remaining: Cycles,
    /// End of the current timed stall window, if the suspension is timed.
    /// `None` while suspended means the suspension is indefinite (e.g. the
    /// owning thread was context-switched away) and must be cleared explicitly.
    stall_end: Option<Cycles>,
    /// Generation counter: stale `SeqReady` events are ignored.
    generation: u64,
    /// Absolute time of the currently pending completion event, if running.
    pending_at: Option<Cycles>,
    // --- statistics ---
    busy: Cycles,
    stalled: Cycles,
    ops_executed: u64,
}

impl SequencerState {
    /// Creates an idle sequencer.
    #[must_use]
    pub fn new(id: SequencerId) -> Self {
        SequencerState {
            id,
            current_shred: None,
            bound_thread: None,
            suspended: false,
            remaining: Cycles::ZERO,
            stall_end: None,
            generation: 0,
            pending_at: None,
            busy: Cycles::ZERO,
            stalled: Cycles::ZERO,
            ops_executed: 0,
        }
    }

    /// The sequencer identifier.
    #[must_use]
    pub fn id(&self) -> SequencerId {
        self.id
    }

    /// The shred currently installed, if any.
    #[must_use]
    pub fn current_shred(&self) -> Option<ShredId> {
        self.current_shred
    }

    /// Installs or clears the current shred.
    pub fn set_current_shred(&mut self, shred: Option<ShredId>) {
        self.current_shred = shred;
    }

    /// The OS thread bound to this sequencer, if any.
    #[must_use]
    pub fn bound_thread(&self) -> Option<OsThreadId> {
        self.bound_thread
    }

    /// Binds (or unbinds) the OS thread served by this sequencer.
    pub fn set_bound_thread(&mut self, thread: Option<OsThreadId>) {
        self.bound_thread = thread;
    }

    /// Returns `true` while the sequencer is suspended by the platform.
    #[must_use]
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// Returns `true` when the sequencer has no shred installed and is not
    /// suspended (i.e. it can accept work immediately).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        !self.suspended && self.current_shred.is_none()
    }

    /// The current generation (for validating `SeqReady` events).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Invalidates any outstanding `SeqReady` event and returns the new
    /// generation to use for the next scheduled event.
    pub fn bump_generation(&mut self) -> u64 {
        self.generation += 1;
        self.generation
    }

    /// Records that a completion event was scheduled at `at`.
    pub fn set_pending(&mut self, at: Option<Cycles>) {
        self.pending_at = at;
    }

    /// The absolute time of the pending completion event, if any.
    #[must_use]
    pub fn pending_at(&self) -> Option<Cycles> {
        self.pending_at
    }

    /// Marks the sequencer suspended at time `now`, capturing the remaining
    /// portion of its in-flight operation.  Idempotent: re-suspending keeps
    /// the first capture.
    pub fn suspend(&mut self, now: Cycles) {
        if self.suspended {
            return;
        }
        self.suspended = true;
        self.remaining = match self.pending_at {
            Some(at) => at.saturating_sub(now),
            None => Cycles::ZERO,
        };
        self.pending_at = None;
        self.bump_generation();
    }

    /// Clears the suspension, returning the captured remaining work so the
    /// caller can schedule the continuation.  Returns `None` if the sequencer
    /// was not suspended.
    pub fn clear_suspension(&mut self) -> Option<Cycles> {
        if !self.suspended {
            return None;
        }
        self.suspended = false;
        self.stall_end = None;
        let r = self.remaining;
        self.remaining = Cycles::ZERO;
        Some(r)
    }

    /// The end of the current timed stall window, if any.
    #[must_use]
    pub fn stall_end(&self) -> Option<Cycles> {
        self.stall_end
    }

    /// Sets (or clears) the timed stall window end.
    pub fn set_stall_end(&mut self, end: Option<Cycles>) {
        self.stall_end = end;
    }

    /// Adds `cycles` of useful execution to the busy counter.
    pub fn add_busy(&mut self, cycles: Cycles) {
        self.busy += cycles;
    }

    /// Adds `cycles` of platform-imposed stall to the stall counter.
    pub fn add_stalled(&mut self, cycles: Cycles) {
        self.stalled += cycles;
    }

    /// Increments the executed-operation counter.
    pub fn count_op(&mut self) {
        self.ops_executed += 1;
    }

    /// Cycles spent doing useful work.
    #[must_use]
    pub fn busy(&self) -> Cycles {
        self.busy
    }

    /// Cycles lost to platform-imposed stalls (serialization, proxy waits,
    /// context-switch suspension).
    #[must_use]
    pub fn stalled(&self) -> Cycles {
        self.stalled
    }

    /// Number of operations executed.
    #[must_use]
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sequencer_is_idle() {
        let s = SequencerState::new(SequencerId::new(2));
        assert_eq!(s.id(), SequencerId::new(2));
        assert!(s.is_idle());
        assert!(!s.is_suspended());
        assert_eq!(s.current_shred(), None);
        assert_eq!(s.bound_thread(), None);
        assert_eq!(s.generation(), 0);
    }

    #[test]
    fn installing_a_shred_clears_idle() {
        let mut s = SequencerState::new(SequencerId::new(0));
        s.set_current_shred(Some(ShredId::new(5)));
        assert!(!s.is_idle());
        assert_eq!(s.current_shred(), Some(ShredId::new(5)));
        s.set_current_shred(None);
        assert!(s.is_idle());
    }

    #[test]
    fn suspend_captures_remaining_work() {
        let mut s = SequencerState::new(SequencerId::new(0));
        s.set_current_shred(Some(ShredId::new(1)));
        s.set_pending(Some(Cycles::new(1_000)));
        let gen_before = s.generation();
        s.suspend(Cycles::new(400));
        assert!(s.is_suspended());
        assert!(s.generation() > gen_before, "suspension invalidates events");
        assert_eq!(s.pending_at(), None);
        assert_eq!(s.clear_suspension(), Some(Cycles::new(600)));
        assert!(!s.is_suspended());
    }

    #[test]
    fn suspend_is_idempotent() {
        let mut s = SequencerState::new(SequencerId::new(0));
        s.set_pending(Some(Cycles::new(100)));
        s.suspend(Cycles::new(40));
        // Second suspension later must not overwrite the first capture.
        s.suspend(Cycles::new(90));
        assert_eq!(s.clear_suspension(), Some(Cycles::new(60)));
    }

    #[test]
    fn suspend_without_pending_captures_zero() {
        let mut s = SequencerState::new(SequencerId::new(0));
        s.suspend(Cycles::new(10));
        assert_eq!(s.clear_suspension(), Some(Cycles::ZERO));
        assert_eq!(s.clear_suspension(), None, "already cleared");
    }

    #[test]
    fn counters_accumulate() {
        let mut s = SequencerState::new(SequencerId::new(0));
        s.add_busy(Cycles::new(10));
        s.add_busy(Cycles::new(5));
        s.add_stalled(Cycles::new(3));
        s.count_op();
        s.count_op();
        assert_eq!(s.busy(), Cycles::new(15));
        assert_eq!(s.stalled(), Cycles::new(3));
        assert_eq!(s.ops_executed(), 2);
    }

    #[test]
    fn thread_binding() {
        let mut s = SequencerState::new(SequencerId::new(0));
        s.set_bound_thread(Some(OsThreadId::new(4)));
        assert_eq!(s.bound_thread(), Some(OsThreadId::new(4)));
        s.set_bound_thread(None);
        assert_eq!(s.bound_thread(), None);
    }
}
