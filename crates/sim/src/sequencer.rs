//! Per-sequencer execution state, stored struct-of-arrays.
//!
//! A sequencer is either *idle* (no shred installed), *running* (a shred is
//! installed and a completion event is pending), or *suspended* (execution
//! paused by the platform — e.g. an AMS suspended while its OMS executes in
//! Ring 0, or a thread context-switched away).  Suspension is orthogonal to
//! having a shred installed: a suspended sequencer remembers how much of its
//! in-flight operation remained so it can be resumed precisely.
//!
//! The state lives in a [`SequencerTable`] — one parallel `Vec` per field,
//! indexed by [`SequencerId`] — rather than a `Vec` of per-sequencer structs.
//! The step path touches only a couple of fields per operation (`generation`
//! and `pending_at` to schedule, `busy`/`ops_executed` to account), so the
//! struct-of-arrays layout keeps each access inside a small, densely-packed
//! array instead of striding over the full per-sequencer record, and the
//! hottest columns of every sequencer share cache lines.

use misp_types::{Cycles, OsThreadId, SequencerId, ShredId};

/// The execution state of every sequencer in the machine, struct-of-arrays:
/// field `f` of sequencer `s` lives at `f[s.index()]`.  All methods take the
/// [`SequencerId`] they operate on.
#[derive(Debug, Clone, Default)]
pub struct SequencerTable {
    /// The shred currently installed on each sequencer, if any.
    current_shred: Vec<Option<ShredId>>,
    /// The OS thread whose context each sequencer is currently serving.
    bound_thread: Vec<Option<OsThreadId>>,
    suspended: Vec<bool>,
    /// Remaining cycles of the in-flight operation captured at suspension.
    remaining: Vec<Cycles>,
    /// End of the current timed stall window, if the suspension is timed.
    /// `None` while suspended means the suspension is indefinite (e.g. the
    /// owning thread was context-switched away) and must be cleared explicitly.
    stall_end: Vec<Option<Cycles>>,
    /// Generation counter: stale `SeqReady` events are ignored.
    generation: Vec<u64>,
    /// Absolute time of the currently pending completion event, if running.
    pending_at: Vec<Option<Cycles>>,
    // --- statistics ---
    busy: Vec<Cycles>,
    stalled: Vec<Cycles>,
    ops_executed: Vec<u64>,
}

impl SequencerTable {
    /// Creates a table of `count` idle sequencers.
    #[must_use]
    pub fn new(count: usize) -> Self {
        SequencerTable {
            current_shred: vec![None; count],
            bound_thread: vec![None; count],
            suspended: vec![false; count],
            remaining: vec![Cycles::ZERO; count],
            stall_end: vec![None; count],
            generation: vec![0; count],
            pending_at: vec![None; count],
            busy: vec![Cycles::ZERO; count],
            stalled: vec![Cycles::ZERO; count],
            ops_executed: vec![0; count],
        }
    }

    /// Number of sequencers in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.generation.len()
    }

    /// Returns `true` when the table has no sequencers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.generation.is_empty()
    }

    /// All sequencer ids, in index order.
    pub fn ids(&self) -> impl Iterator<Item = SequencerId> {
        (0..self.len() as u32).map(SequencerId::new)
    }

    /// The shred currently installed on `seq`, if any.
    #[inline]
    #[must_use]
    pub fn current_shred(&self, seq: SequencerId) -> Option<ShredId> {
        self.current_shred[seq.as_usize()]
    }

    /// Installs or clears the current shred of `seq`.
    #[inline]
    pub fn set_current_shred(&mut self, seq: SequencerId, shred: Option<ShredId>) {
        self.current_shred[seq.as_usize()] = shred;
    }

    /// The OS thread bound to `seq`, if any.
    #[inline]
    #[must_use]
    pub fn bound_thread(&self, seq: SequencerId) -> Option<OsThreadId> {
        self.bound_thread[seq.as_usize()]
    }

    /// Binds (or unbinds) the OS thread served by `seq`.
    #[inline]
    pub fn set_bound_thread(&mut self, seq: SequencerId, thread: Option<OsThreadId>) {
        self.bound_thread[seq.as_usize()] = thread;
    }

    /// Returns `true` while `seq` is suspended by the platform.
    #[inline]
    #[must_use]
    pub fn is_suspended(&self, seq: SequencerId) -> bool {
        self.suspended[seq.as_usize()]
    }

    /// Returns `true` when `seq` has no shred installed and is not suspended
    /// (i.e. it can accept work immediately).
    #[inline]
    #[must_use]
    pub fn is_idle(&self, seq: SequencerId) -> bool {
        !self.suspended[seq.as_usize()] && self.current_shred[seq.as_usize()].is_none()
    }

    /// The current generation of `seq` (for validating `SeqReady` events).
    #[inline]
    #[must_use]
    pub fn generation(&self, seq: SequencerId) -> u64 {
        self.generation[seq.as_usize()]
    }

    /// Invalidates any outstanding `SeqReady` event for `seq` and returns the
    /// new generation to use for the next scheduled event.
    #[inline]
    pub fn bump_generation(&mut self, seq: SequencerId) -> u64 {
        let g = &mut self.generation[seq.as_usize()];
        *g += 1;
        *g
    }

    /// Records that a completion event for `seq` was scheduled at `at`.
    #[inline]
    pub fn set_pending(&mut self, seq: SequencerId, at: Option<Cycles>) {
        self.pending_at[seq.as_usize()] = at;
    }

    /// The absolute time of `seq`'s pending completion event, if any.
    #[inline]
    #[must_use]
    pub fn pending_at(&self, seq: SequencerId) -> Option<Cycles> {
        self.pending_at[seq.as_usize()]
    }

    /// Marks `seq` suspended at time `now`, capturing the remaining portion
    /// of its in-flight operation.  Idempotent: re-suspending keeps the first
    /// capture.
    pub fn suspend(&mut self, seq: SequencerId, now: Cycles) {
        let i = seq.as_usize();
        if self.suspended[i] {
            return;
        }
        self.suspended[i] = true;
        self.remaining[i] = match self.pending_at[i] {
            Some(at) => at.saturating_sub(now),
            None => Cycles::ZERO,
        };
        self.pending_at[i] = None;
        self.bump_generation(seq);
    }

    /// Clears the suspension of `seq`, returning the captured remaining work
    /// so the caller can schedule the continuation.  Returns `None` if the
    /// sequencer was not suspended.
    pub fn clear_suspension(&mut self, seq: SequencerId) -> Option<Cycles> {
        let i = seq.as_usize();
        if !self.suspended[i] {
            return None;
        }
        self.suspended[i] = false;
        self.stall_end[i] = None;
        let r = self.remaining[i];
        self.remaining[i] = Cycles::ZERO;
        Some(r)
    }

    /// The end of `seq`'s current timed stall window, if any.
    #[inline]
    #[must_use]
    pub fn stall_end(&self, seq: SequencerId) -> Option<Cycles> {
        self.stall_end[seq.as_usize()]
    }

    /// Sets (or clears) the timed stall window end of `seq`.
    #[inline]
    pub fn set_stall_end(&mut self, seq: SequencerId, end: Option<Cycles>) {
        self.stall_end[seq.as_usize()] = end;
    }

    /// Adds `cycles` of useful execution to `seq`'s busy counter.
    #[inline]
    pub fn add_busy(&mut self, seq: SequencerId, cycles: Cycles) {
        self.busy[seq.as_usize()] += cycles;
    }

    /// Adds `cycles` of platform-imposed stall to `seq`'s stall counter.
    #[inline]
    pub fn add_stalled(&mut self, seq: SequencerId, cycles: Cycles) {
        self.stalled[seq.as_usize()] += cycles;
    }

    /// Increments `seq`'s executed-operation counter.
    #[inline]
    pub fn count_op(&mut self, seq: SequencerId) {
        self.ops_executed[seq.as_usize()] += 1;
    }

    /// Cycles `seq` spent doing useful work.
    #[inline]
    #[must_use]
    pub fn busy(&self, seq: SequencerId) -> Cycles {
        self.busy[seq.as_usize()]
    }

    /// Cycles `seq` lost to platform-imposed stalls (serialization, proxy
    /// waits, context-switch suspension).
    #[inline]
    #[must_use]
    pub fn stalled(&self, seq: SequencerId) -> Cycles {
        self.stalled[seq.as_usize()]
    }

    /// Number of operations `seq` executed.
    #[inline]
    #[must_use]
    pub fn ops_executed(&self, seq: SequencerId) -> u64 {
        self.ops_executed[seq.as_usize()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEQ: SequencerId = SequencerId::new(0);

    #[test]
    fn new_sequencers_are_idle() {
        let t = SequencerTable::new(3);
        assert_eq!(t.len(), 3);
        let s = SequencerId::new(2);
        assert!(t.is_idle(s));
        assert!(!t.is_suspended(s));
        assert_eq!(t.current_shred(s), None);
        assert_eq!(t.bound_thread(s), None);
        assert_eq!(t.generation(s), 0);
        assert_eq!(t.ids().collect::<Vec<_>>().len(), 3);
    }

    #[test]
    fn installing_a_shred_clears_idle() {
        let mut t = SequencerTable::new(1);
        t.set_current_shred(SEQ, Some(ShredId::new(5)));
        assert!(!t.is_idle(SEQ));
        assert_eq!(t.current_shred(SEQ), Some(ShredId::new(5)));
        t.set_current_shred(SEQ, None);
        assert!(t.is_idle(SEQ));
    }

    #[test]
    fn suspend_captures_remaining_work() {
        let mut t = SequencerTable::new(1);
        t.set_current_shred(SEQ, Some(ShredId::new(1)));
        t.set_pending(SEQ, Some(Cycles::new(1_000)));
        let gen_before = t.generation(SEQ);
        t.suspend(SEQ, Cycles::new(400));
        assert!(t.is_suspended(SEQ));
        assert!(
            t.generation(SEQ) > gen_before,
            "suspension invalidates events"
        );
        assert_eq!(t.pending_at(SEQ), None);
        assert_eq!(t.clear_suspension(SEQ), Some(Cycles::new(600)));
        assert!(!t.is_suspended(SEQ));
    }

    #[test]
    fn suspend_is_idempotent() {
        let mut t = SequencerTable::new(1);
        t.set_pending(SEQ, Some(Cycles::new(100)));
        t.suspend(SEQ, Cycles::new(40));
        // Second suspension later must not overwrite the first capture.
        t.suspend(SEQ, Cycles::new(90));
        assert_eq!(t.clear_suspension(SEQ), Some(Cycles::new(60)));
    }

    #[test]
    fn suspend_without_pending_captures_zero() {
        let mut t = SequencerTable::new(1);
        t.suspend(SEQ, Cycles::new(10));
        assert_eq!(t.clear_suspension(SEQ), Some(Cycles::ZERO));
        assert_eq!(t.clear_suspension(SEQ), None, "already cleared");
    }

    #[test]
    fn counters_accumulate_per_sequencer() {
        let mut t = SequencerTable::new(2);
        let other = SequencerId::new(1);
        t.add_busy(SEQ, Cycles::new(10));
        t.add_busy(SEQ, Cycles::new(5));
        t.add_stalled(SEQ, Cycles::new(3));
        t.count_op(SEQ);
        t.count_op(SEQ);
        assert_eq!(t.busy(SEQ), Cycles::new(15));
        assert_eq!(t.stalled(SEQ), Cycles::new(3));
        assert_eq!(t.ops_executed(SEQ), 2);
        assert_eq!(t.busy(other), Cycles::ZERO, "columns are independent");
        assert_eq!(t.ops_executed(other), 0);
    }

    #[test]
    fn thread_binding() {
        let mut t = SequencerTable::new(1);
        t.set_bound_thread(SEQ, Some(OsThreadId::new(4)));
        assert_eq!(t.bound_thread(SEQ), Some(OsThreadId::new(4)));
        t.set_bound_thread(SEQ, None);
        assert_eq!(t.bound_thread(SEQ), None);
    }
}
