//! Shred execution state and the shred pool.

use misp_isa::OwnedCursor;
use misp_types::{Cycles, OsThreadId, ProcessId, ShredId};
use std::sync::Arc;

/// Lifecycle state of a shred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShredStatus {
    /// Ready to run (waiting in a runtime queue).
    Ready,
    /// Currently installed on a sequencer.
    Running,
    /// Blocked on a synchronization object or a join.
    Blocked,
    /// Finished execution.
    Done,
}

/// The execution state of one shred.
#[derive(Debug, Clone)]
pub struct ShredExecState {
    id: ShredId,
    process: ProcessId,
    thread: OsThreadId,
    cursor: OwnedCursor,
    status: ShredStatus,
    created_at: Cycles,
    finished_at: Option<Cycles>,
}

impl ShredExecState {
    /// The shred identifier.
    #[must_use]
    pub fn id(&self) -> ShredId {
        self.id
    }

    /// The process this shred belongs to.
    #[must_use]
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// The OS thread that owns this shred.
    #[must_use]
    pub fn thread(&self) -> OsThreadId {
        self.thread
    }

    /// The shred's program name.
    #[must_use]
    pub fn program_name(&self) -> &str {
        self.cursor.program().name()
    }

    /// Mutable access to the program cursor (used by the engine to fetch the
    /// next operation).
    pub fn cursor_mut(&mut self) -> &mut OwnedCursor {
        &mut self.cursor
    }

    /// The current lifecycle status.
    #[must_use]
    pub fn status(&self) -> ShredStatus {
        self.status
    }

    /// Updates the lifecycle status.
    pub fn set_status(&mut self, status: ShredStatus) {
        self.status = status;
    }

    /// The time at which the shred was created.
    #[must_use]
    pub fn created_at(&self) -> Cycles {
        self.created_at
    }

    /// The time at which the shred finished, if it has.
    #[must_use]
    pub fn finished_at(&self) -> Option<Cycles> {
        self.finished_at
    }

    /// Marks the shred finished at `now`.
    pub fn finish(&mut self, now: Cycles) {
        self.status = ShredStatus::Done;
        self.finished_at = Some(now);
    }
}

/// The pool of all shreds created during a simulation, across all processes.
#[derive(Debug, Default)]
pub struct ShredPool {
    shreds: Vec<ShredExecState>,
}

impl ShredPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        ShredPool::default()
    }

    /// Creates a new shred in the [`ShredStatus::Ready`] state and returns its
    /// identifier.
    pub fn create(
        &mut self,
        process: ProcessId,
        thread: OsThreadId,
        program: Arc<misp_isa::ShredProgram>,
        now: Cycles,
    ) -> ShredId {
        let id = ShredId::new(self.shreds.len() as u32);
        self.shreds.push(ShredExecState {
            id,
            process,
            thread,
            cursor: OwnedCursor::new(program),
            status: ShredStatus::Ready,
            created_at: now,
            finished_at: None,
        });
        id
    }

    /// Looks up a shred.
    #[must_use]
    pub fn get(&self, id: ShredId) -> Option<&ShredExecState> {
        self.shreds.get(id.as_usize())
    }

    /// Looks up a shred mutably.
    pub fn get_mut(&mut self, id: ShredId) -> Option<&mut ShredExecState> {
        self.shreds.get_mut(id.as_usize())
    }

    /// Total number of shreds ever created.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shreds.len()
    }

    /// Returns `true` when no shreds have been created.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shreds.is_empty()
    }

    /// Iterates over all shreds.
    pub fn iter(&self) -> impl Iterator<Item = &ShredExecState> {
        self.shreds.iter()
    }

    /// Returns `true` when every shred belonging to `process` is done.
    /// A process with no shreds counts as done.
    #[must_use]
    pub fn process_done(&self, process: ProcessId) -> bool {
        self.shreds
            .iter()
            .filter(|s| s.process == process)
            .all(|s| s.status == ShredStatus::Done)
    }

    /// Number of shreds of `process` in the given status.
    #[must_use]
    pub fn count_by_status(&self, process: ProcessId, status: ShredStatus) -> usize {
        self.shreds
            .iter()
            .filter(|s| s.process == process && s.status == status)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_isa::ProgramBuilder;

    fn program(name: &str) -> Arc<misp_isa::ShredProgram> {
        Arc::new(ProgramBuilder::new(name).compute(Cycles::new(1)).build())
    }

    #[test]
    fn create_and_lookup() {
        let mut pool = ShredPool::new();
        assert!(pool.is_empty());
        let a = pool.create(
            ProcessId::new(0),
            OsThreadId::new(0),
            program("a"),
            Cycles::ZERO,
        );
        let b = pool.create(
            ProcessId::new(0),
            OsThreadId::new(1),
            program("b"),
            Cycles::new(5),
        );
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.get(a).unwrap().program_name(), "a");
        assert_eq!(pool.get(b).unwrap().created_at(), Cycles::new(5));
        assert_eq!(pool.get(b).unwrap().thread(), OsThreadId::new(1));
        assert!(pool.get(ShredId::new(9)).is_none());
    }

    #[test]
    fn status_lifecycle() {
        let mut pool = ShredPool::new();
        let id = pool.create(
            ProcessId::new(0),
            OsThreadId::new(0),
            program("x"),
            Cycles::ZERO,
        );
        assert_eq!(pool.get(id).unwrap().status(), ShredStatus::Ready);
        pool.get_mut(id).unwrap().set_status(ShredStatus::Running);
        assert_eq!(pool.get(id).unwrap().status(), ShredStatus::Running);
        pool.get_mut(id).unwrap().finish(Cycles::new(100));
        let s = pool.get(id).unwrap();
        assert_eq!(s.status(), ShredStatus::Done);
        assert_eq!(s.finished_at(), Some(Cycles::new(100)));
    }

    #[test]
    fn process_done_tracks_per_process() {
        let mut pool = ShredPool::new();
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let a = pool.create(p0, OsThreadId::new(0), program("a"), Cycles::ZERO);
        let _b = pool.create(p1, OsThreadId::new(1), program("b"), Cycles::ZERO);
        assert!(!pool.process_done(p0));
        pool.get_mut(a).unwrap().finish(Cycles::new(1));
        assert!(pool.process_done(p0));
        assert!(!pool.process_done(p1));
        assert!(
            pool.process_done(ProcessId::new(9)),
            "no shreds counts as done"
        );
        assert_eq!(pool.count_by_status(p0, ShredStatus::Done), 1);
        assert_eq!(pool.count_by_status(p1, ShredStatus::Ready), 1);
    }

    #[test]
    fn cursor_is_usable_through_pool() {
        let mut pool = ShredPool::new();
        let id = pool.create(
            ProcessId::new(0),
            OsThreadId::new(0),
            program("c"),
            Cycles::ZERO,
        );
        let op = pool.get_mut(id).unwrap().cursor_mut().next_op();
        assert_eq!(op, misp_isa::Op::Compute(Cycles::new(1)));
    }
}
