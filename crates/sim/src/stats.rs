//! Simulation statistics.

use misp_cache::CacheStats;
use misp_mem::TlbStats;
use misp_os::{OsEventCounts, OsEventKind};
use misp_types::{Cycles, Histogram, ProcessId, SequencerId};
use serde::Serialize;
use std::collections::BTreeMap;

/// Request-serving (open-loop scenario) statistics.
///
/// Populated only when a runtime drives a service model: each admitted
/// request contributes one latency sample (completion cycle minus the
/// *scheduled* arrival cycle, so generator lag under overload shows up as
/// latency rather than being silently absorbed — the open-loop discipline).
#[derive(Debug, Default, Clone, PartialEq, Serialize)]
pub struct ServiceStats {
    /// Requests admitted into the system (shreds created).
    pub admitted: u64,
    /// Requests that completed service.
    pub completed: u64,
    /// Requests dropped because the bounded queue was full at arrival.
    pub dropped: u64,
    /// Per-request latency histogram, in cycles from scheduled arrival to
    /// completion.
    pub latency: Histogram,
    /// High-water mark of outstanding requests (queued + in service).
    pub max_outstanding: u64,
    /// Queue-depth time series: `(cycle, outstanding)` at each admission and
    /// completion edge, truncated to a bounded number of samples.
    pub queue_depth: Vec<(u64, u64)>,
}

impl ServiceStats {
    /// Folds `other` into `self` (commutative on the counters and histogram;
    /// the queue-depth series is concatenated in call order, which the engine
    /// keeps deterministic by folding runtimes in sequencer order).
    pub fn merge(&mut self, other: &ServiceStats) {
        self.admitted += other.admitted;
        self.completed += other.completed;
        self.dropped += other.dropped;
        self.latency.merge(&other.latency);
        self.max_outstanding = self.max_outstanding.max(other.max_outstanding);
        self.queue_depth.extend_from_slice(&other.queue_depth);
    }
}

/// Per-sequencer utilization summary.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SeqUtilization {
    /// Cycles spent executing operations.
    pub busy: Cycles,
    /// Cycles lost to platform-imposed stalls (serialization, proxy waits,
    /// context-switch suspension).
    pub stalled: Cycles,
    /// Operations executed.
    pub ops: u64,
}

/// Machine-wide statistics accumulated over a simulation run.
///
/// The split between OMS-originated and AMS-originated events mirrors the
/// column structure of the paper's Table 1; the overhead counters feed the
/// analytic model used for Figure 5.
#[derive(Debug, Default, Clone, PartialEq, Serialize)]
pub struct SimStats {
    /// Privileged events that originated on an OS-managed sequencer (or, in
    /// the SMP baseline, on any core).
    pub oms_events: OsEventCounts,
    /// Privileged events that originated on an application-managed sequencer
    /// and therefore required proxy execution.
    pub ams_events: OsEventCounts,
    /// Number of proxy-execution episodes performed by OMSs.
    pub proxy_executions: u64,
    /// Number of serialization episodes (OMS Ring 0 entries that suspended
    /// AMSs).
    pub serializations: u64,
    /// Number of OS thread context switches.
    pub context_switches: u64,
    /// Number of user-level `SIGNAL` instructions executed.
    pub signals_sent: u64,
    /// Total cycles of AMS execution lost to suspension, summed over AMSs.
    pub suspension_cycles: Cycles,
    /// Completion time of each measured process.
    pub process_completion: BTreeMap<u32, Cycles>,
    /// Per-sequencer utilization, indexed by sequencer.
    pub per_sequencer: Vec<SeqUtilization>,
    /// Per-sequencer privileged-event counts, indexed by sequencer.
    pub per_sequencer_events: Vec<OsEventCounts>,
    /// Machine-wide TLB totals (hits, misses, flushes), folded from the
    /// per-sequencer TLBs when the report is assembled.
    pub tlb: TlbStats,
    /// Per-sequencer TLB statistics, indexed by sequencer.
    pub per_sequencer_tlb: Vec<TlbStats>,
    /// Machine-wide cache totals; `None` while the cache model is disabled.
    pub cache: Option<CacheStats>,
    /// Per-sequencer cache statistics; empty while the cache model is
    /// disabled.
    pub per_sequencer_cache: Vec<CacheStats>,
    /// Request-serving statistics; `None` unless a runtime drove a service
    /// model (open-loop scenarios).
    pub service: Option<ServiceStats>,
}

impl SimStats {
    /// Creates statistics for a machine with `sequencers` sequencers.
    #[must_use]
    pub fn new(sequencers: usize) -> Self {
        SimStats {
            per_sequencer: vec![SeqUtilization::default(); sequencers],
            per_sequencer_events: vec![OsEventCounts::default(); sequencers],
            per_sequencer_tlb: vec![TlbStats::default(); sequencers],
            ..SimStats::default()
        }
    }

    /// Installs the per-sequencer TLB snapshots and folds them into the
    /// machine-wide totals (called when the report is assembled).
    pub fn fold_tlb(&mut self, per_sequencer: Vec<TlbStats>) {
        let mut total = TlbStats::default();
        for t in &per_sequencer {
            total.hits += t.hits;
            total.misses += t.misses;
            total.flushes += t.flushes;
        }
        self.tlb = total;
        self.per_sequencer_tlb = per_sequencer;
    }

    /// Installs the per-sequencer cache snapshots and folds them into the
    /// machine-wide totals (called when the report is assembled, cache model
    /// enabled only).
    pub fn fold_cache(&mut self, per_sequencer: Vec<CacheStats>) {
        let mut total = CacheStats::default();
        for c in &per_sequencer {
            total.merge(c);
        }
        self.cache = Some(total);
        self.per_sequencer_cache = per_sequencer;
    }

    /// Records a privileged event originating on `seq`.
    ///
    /// `from_oms` selects whether the event lands in the OMS or AMS columns of
    /// the Table 1 accounting.
    pub fn record_event(&mut self, seq: SequencerId, kind: OsEventKind, from_oms: bool) {
        if from_oms {
            self.oms_events.record(kind);
        } else {
            self.ams_events.record(kind);
        }
        if let Some(counts) = self.per_sequencer_events.get_mut(seq.as_usize()) {
            counts.record(kind);
        }
    }

    /// Records the completion time of a measured process (keeps the earliest
    /// recorded value).
    pub fn record_completion(&mut self, process: ProcessId, at: Cycles) {
        self.process_completion.entry(process.index()).or_insert(at);
    }

    /// The completion time of `process`, if it finished.
    #[must_use]
    pub fn completion_of(&self, process: ProcessId) -> Option<Cycles> {
        self.process_completion.get(&process.index()).copied()
    }

    /// Total serializing events (OMS + AMS), the quantity Table 1 itemizes.
    #[must_use]
    pub fn total_serializing_events(&self) -> u64 {
        self.oms_events.total() + self.ams_events.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_event_splits_oms_and_ams() {
        let mut s = SimStats::new(4);
        s.record_event(SequencerId::new(0), OsEventKind::Syscall, true);
        s.record_event(SequencerId::new(1), OsEventKind::PageFault, false);
        s.record_event(SequencerId::new(1), OsEventKind::PageFault, false);
        assert_eq!(s.oms_events.syscalls, 1);
        assert_eq!(s.ams_events.page_faults, 2);
        assert_eq!(s.per_sequencer_events[1].page_faults, 2);
        assert_eq!(s.total_serializing_events(), 3);
    }

    #[test]
    fn completion_keeps_first_value() {
        let mut s = SimStats::new(1);
        let p = ProcessId::new(3);
        assert_eq!(s.completion_of(p), None);
        s.record_completion(p, Cycles::new(100));
        s.record_completion(p, Cycles::new(200));
        assert_eq!(s.completion_of(p), Some(Cycles::new(100)));
    }

    #[test]
    fn out_of_range_sequencer_does_not_panic() {
        let mut s = SimStats::new(1);
        s.record_event(SequencerId::new(9), OsEventKind::Timer, true);
        assert_eq!(s.oms_events.timer, 1);
    }

    #[test]
    fn fold_tlb_sums_per_sequencer_counters() {
        let mut s = SimStats::new(2);
        let a = TlbStats {
            hits: 10,
            misses: 3,
            flushes: 1,
        };
        let b = TlbStats {
            hits: 5,
            misses: 7,
            flushes: 2,
        };
        s.fold_tlb(vec![a, b]);
        assert_eq!(s.tlb.hits, 15);
        assert_eq!(s.tlb.misses, 10);
        assert_eq!(s.tlb.flushes, 3);
        assert_eq!(s.per_sequencer_tlb, vec![a, b]);
    }

    #[test]
    fn fold_cache_sums_per_sequencer_counters() {
        let mut s = SimStats::new(2);
        assert!(s.cache.is_none(), "cache totals absent until folded");
        let a = CacheStats {
            l1_hits: 4,
            l2_hits: 2,
            compulsory_misses: 1,
            ..CacheStats::default()
        };
        s.fold_cache(vec![a, a]);
        let total = s.cache.expect("folded");
        assert_eq!(total.l1_hits, 8);
        assert_eq!(total.accesses(), 14);
        assert_eq!(s.per_sequencer_cache.len(), 2);
    }
}
