//! The SMP baseline machine.
//!
//! The MISP paper compares every result against "an equivalently configured
//! SMP system" (Section 5): the same number of hardware contexts, but all of
//! them OS-visible, each servicing its own system calls, page faults and timer
//! interrupts locally with no cross-core serialization.  This crate provides
//! that baseline as a [`misp_sim::Platform`] implementation for the
//! `misp-sim` engine plus the [`SmpMachine`] convenience wrapper.
//!
//! The important difference from the MISP machine in `misp-core` is what
//! *doesn't* happen here: a privileged event on one core never suspends any
//! other core, and there is no proxy execution because every core can execute
//! Ring 0 code itself.
//!
//! # Examples
//!
//! ```
//! use misp_smp::SmpMachine;
//! use misp_isa::{ProgramBuilder, ProgramLibrary};
//! use misp_sim::{SimConfig, SingleShredRuntime};
//! use misp_types::Cycles;
//!
//! let mut library = ProgramLibrary::new();
//! let main = library.insert(ProgramBuilder::new("main").compute(Cycles::new(10_000)).build());
//! let mut machine = SmpMachine::new(4, SimConfig::default(), library);
//! machine.add_process("demo", Box::new(SingleShredRuntime::new(main)), Some(0));
//! let report = machine.run().unwrap();
//! assert!(report.total_cycles >= Cycles::new(10_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod machine;
mod platform;

pub use machine::SmpMachine;
pub use platform::SmpPlatform;
