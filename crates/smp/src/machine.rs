//! A convenience wrapper that assembles a complete SMP machine.

use crate::SmpPlatform;
use misp_isa::ProgramLibrary;
use misp_sim::{Engine, Runtime, SimConfig, SimReport};
use misp_types::{OsThreadId, ProcessId, Result};

/// A fully-assembled SMP machine: cores, engine, OS processes and runtimes.
///
/// The shape mirrors [`misp_core::MispMachine`](https://docs.rs) so that the
/// experiment harnesses can run the same workload on both machines and compare
/// them, exactly as the paper does in Figures 4, 5 and 7.
#[derive(Debug)]
pub struct SmpMachine {
    engine: Engine<SmpPlatform>,
}

impl SmpMachine {
    /// Creates an SMP machine with `cores` cores.
    #[must_use]
    pub fn new(cores: usize, config: SimConfig, library: ProgramLibrary) -> Self {
        let platform = SmpPlatform::new(cores);
        SmpMachine {
            engine: Engine::new(config, cores, library, platform),
        }
    }

    /// Adds a process with one OS thread and the given user-level runtime,
    /// pinned to `core` if given (otherwise placed on the least-loaded core).
    pub fn add_process(
        &mut self,
        name: &str,
        runtime: Box<dyn Runtime>,
        core: Option<usize>,
    ) -> ProcessId {
        let pid = self.engine.core_mut().kernel_mut().spawn_process(name);
        self.engine.core_mut().memory_mut().register_process(pid);
        self.engine.add_runtime(pid, runtime);
        let tid = self.engine.core_mut().kernel_mut().spawn_thread(pid);
        self.place(tid, core);
        pid
    }

    /// Adds an additional OS thread to an existing process (an SMP
    /// multithreaded application has one thread per core it wants to use).
    pub fn add_thread(&mut self, process: ProcessId, core: Option<usize>) -> OsThreadId {
        let tid = self.engine.core_mut().kernel_mut().spawn_thread(process);
        self.place(tid, core);
        tid
    }

    fn place(&mut self, thread: OsThreadId, core: Option<usize>) {
        match core {
            Some(c) => self.engine.platform_mut().pin_thread(thread, c),
            None => self.engine.platform_mut().place_thread(thread),
        }
    }

    /// Restricts the completion criterion to the given processes.
    pub fn set_measured(&mut self, processes: Vec<ProcessId>) {
        self.engine.set_measured(processes);
    }

    /// The underlying engine.
    #[must_use]
    pub fn engine(&self) -> &Engine<SmpPlatform> {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine<SmpPlatform> {
        &mut self.engine
    }

    /// Surrenders the assembled machine so it can join a multi-machine
    /// [`misp_sim::FleetEngine`].
    #[must_use]
    pub fn into_sim_machine(self) -> misp_sim::Machine<SmpPlatform> {
        self.engine.into_machine()
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Propagates the engine's errors (cycle-budget exhaustion, deadlock,
    /// missing runtime).
    pub fn run(&mut self) -> Result<SimReport> {
        self.engine.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_isa::{ProgramBuilder, SyscallKind};
    use misp_os::TimerConfig;
    use misp_sim::SingleShredRuntime;
    use misp_types::{Cycles, VirtAddr};

    fn quiet_config() -> SimConfig {
        SimConfig {
            timer: TimerConfig::disabled(),
            ..SimConfig::default()
        }
    }

    #[test]
    fn two_threads_on_two_cores_run_concurrently() {
        let mut lib = ProgramLibrary::new();
        let w = lib.insert(
            ProgramBuilder::new("w")
                .compute(Cycles::new(100_000))
                .build(),
        );
        let mut machine = SmpMachine::new(2, quiet_config(), lib);
        let pid = machine.add_process("app", Box::new(SingleShredRuntime::new(w)), Some(0));
        machine.add_thread(pid, Some(1));
        let report = machine.run().unwrap();
        assert!(report.total_cycles < Cycles::new(130_000));
        assert!(report.stats.per_sequencer[1].busy >= Cycles::new(100_000));
    }

    #[test]
    fn faults_on_one_core_do_not_stall_the_other() {
        let mut lib = ProgramLibrary::new();
        let faulty = lib.insert(
            ProgramBuilder::new("faulty")
                .touch_pages(VirtAddr::new(0x100_0000), 50)
                .syscall(SyscallKind::Io)
                .build(),
        );
        let clean = lib.insert(
            ProgramBuilder::new("clean")
                .compute(Cycles::new(400_000))
                .build(),
        );
        let mut machine = SmpMachine::new(2, quiet_config(), lib);
        machine.add_process("faulty", Box::new(SingleShredRuntime::new(faulty)), Some(0));
        machine.add_process("clean", Box::new(SingleShredRuntime::new(clean)), Some(1));
        let report = machine.run().unwrap();
        assert_eq!(report.stats.oms_events.page_faults, 50);
        assert_eq!(
            report.stats.per_sequencer[1].stalled,
            Cycles::ZERO,
            "SMP cores never stall each other"
        );
        assert_eq!(report.stats.serializations, 0);
        assert_eq!(report.stats.proxy_executions, 0);
    }

    #[test]
    fn timesharing_on_one_core_slows_the_measured_process() {
        let mut lib = ProgramLibrary::new();
        let w = lib.insert(
            ProgramBuilder::new("w")
                .compute(Cycles::new(30_000_000))
                .build(),
        );
        let mut machine = SmpMachine::new(1, SimConfig::default(), lib);
        let a = machine.add_process("a", Box::new(SingleShredRuntime::new(w)), Some(0));
        machine.add_process("b", Box::new(SingleShredRuntime::new(w)), Some(0));
        machine.set_measured(vec![a]);
        let report = machine.run().unwrap();
        assert!(report.total_cycles > Cycles::new(45_000_000));
        assert!(report.stats.context_switches > 0);
    }
}
