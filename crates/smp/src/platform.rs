//! The SMP platform implementation.

use misp_os::{OsEventKind, PlacementPolicy, SystemScheduler};
use misp_sim::{EngineCore, LogKind, Platform};
use misp_types::{Cycles, FxHashMap, OsThreadId, SequencerId};

/// A symmetric multiprocessor: every sequencer is an OS-visible core that
/// services its own privileged events.
///
/// Threads are scheduled per core with round-robin time slicing, exactly like
/// the MISP machine's OMS scheduling, so that multi-programming comparisons
/// (Figure 7) differ only in the architectural mechanism and not in OS policy.
#[derive(Debug)]
pub struct SmpPlatform {
    cores: usize,
    quantum_ticks: u64,
    scheduler: Option<SystemScheduler>,
    thread_ctx: FxHashMap<OsThreadId, misp_sim::SavedContext>,
    pinned: Vec<(OsThreadId, usize)>,
    auto_place: Vec<OsThreadId>,
}

impl SmpPlatform {
    /// Creates an SMP platform with `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "an SMP machine needs at least one core");
        SmpPlatform {
            cores,
            quantum_ticks: 1,
            scheduler: None,
            thread_ctx: FxHashMap::default(),
            pinned: Vec::new(),
            auto_place: Vec::new(),
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Sets the OS scheduling quantum in timer ticks (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `ticks` is zero.
    pub fn set_quantum_ticks(&mut self, ticks: u64) {
        assert!(ticks > 0, "quantum must be at least one tick");
        self.quantum_ticks = ticks;
    }

    /// Pins `thread` to core `core_index`.
    ///
    /// # Panics
    ///
    /// Panics if `core_index` is out of range.
    pub fn pin_thread(&mut self, thread: OsThreadId, core_index: usize) {
        assert!(core_index < self.cores, "core index out of range");
        self.pinned.push((thread, core_index));
    }

    /// Places `thread` on the least-loaded core.
    pub fn place_thread(&mut self, thread: OsThreadId) {
        self.auto_place.push(thread);
    }

    fn install_thread(
        &mut self,
        core: &mut EngineCore,
        core_idx: usize,
        thread: OsThreadId,
        at: Cycles,
    ) {
        let seq = SequencerId::new(core_idx as u32);
        let pid = core
            .kernel()
            .thread(thread)
            .expect("placed thread must be spawned")
            .process();
        core.memory_mut().register_process(pid);
        core.memory_mut()
            .bind_sequencer(seq, pid)
            .expect("process is registered");
        core.sequencers_mut().set_bound_thread(seq, Some(thread));
        let ctx = self.thread_ctx.remove(&thread).unwrap_or_default();
        core.restore_context(seq, ctx, at);
        let _ = core
            .kernel_mut()
            .set_thread_state(thread, misp_os::ThreadState::Running);
    }
}

impl Platform for SmpPlatform {
    fn init(&mut self, core: &mut EngineCore) {
        // Impose the SMP clustering on the cache hierarchy: every core is its
        // own cluster, so cross-core sharing always crosses the coherence
        // fabric (unlike MISP, where sequencers of one processor share an L2).
        // (configure_caches is a no-op for a disabled cache config.)
        let cache_config = core.config().cache;
        let clusters: Vec<usize> = (0..self.cores).collect();
        core.memory_mut().configure_caches(cache_config, &clusters);

        let mut scheduler =
            SystemScheduler::new(self.cores, self.quantum_ticks, PlacementPolicy::LeastLoaded);
        for &(thread, core_idx) in &self.pinned {
            scheduler.place_on(thread, core_idx);
        }
        for &thread in &self.auto_place {
            scheduler.place(thread);
        }
        for core_idx in 0..self.cores {
            let dispatched = scheduler.cpu_mut(core_idx).dispatch();
            if let Some(thread) = dispatched {
                self.install_thread(core, core_idx, thread, Cycles::ZERO);
            }
            if scheduler.cpu(core_idx).load() > 0 || dispatched.is_some() {
                let first = core.config().timer.next_tick_after(Cycles::ZERO);
                if first != Cycles::MAX {
                    core.schedule_timer(SequencerId::new(core_idx as u32), first, 1);
                }
            }
        }
        self.scheduler = Some(scheduler);
    }

    fn on_priv_event(
        &mut self,
        core: &mut EngineCore,
        seq: SequencerId,
        kind: OsEventKind,
        now: Cycles,
    ) -> Cycles {
        // Every core handles its own faults; no other core is affected.
        core.stats_mut().record_event(seq, kind, true);
        core.kernel_mut().record_event(kind);
        core.log_event_with(seq, LogKind::RingEnter, || kind.to_string());
        // Privileged code displaces the servicing core's L1, exactly as the
        // MISP platform charges its OMS per privileged service — keeping
        // cache-enabled cross-machine comparisons unbiased.  (No-op while
        // the cache model is disabled.)
        core.memory_mut().flush_cache(seq);
        let service = core.kernel().service_cost(kind);
        core.log_event_with(seq, LogKind::RingExit, || kind.to_string());
        now + service
    }

    fn on_timer_tick(&mut self, core: &mut EngineCore, cpu: SequencerId, tick: u64, now: Cycles) {
        let core_idx = cpu.as_usize();
        core.log_event_with(cpu, LogKind::TimerTick, || format!("tick {tick}"));
        core.stats_mut().record_event(cpu, OsEventKind::Timer, true);
        core.kernel_mut().record_event(OsEventKind::Timer);
        let mut priv_time = core.kernel().service_cost(OsEventKind::Timer);
        if core.config().timer.is_other_interrupt_tick(tick) {
            core.stats_mut()
                .record_event(cpu, OsEventKind::OtherInterrupt, true);
            core.kernel_mut().record_event(OsEventKind::OtherInterrupt);
            priv_time += core.kernel().service_cost(OsEventKind::OtherInterrupt);
        }

        let switch = self
            .scheduler
            .as_mut()
            .expect("platform initialized")
            .cpu_mut(core_idx)
            .on_tick();

        if let Some((prev, next)) = switch {
            priv_time += core.kernel().context_switch_cost(0);
            core.stats_mut().context_switches += 1;
            core.log_event_with(cpu, LogKind::ContextSwitch, || format!("{prev} -> {next}"));
            let ctx = core.save_context(cpu, now);
            // Cold-cache restart for the incoming thread (no-op while the
            // cache model is disabled).
            core.memory_mut().flush_cache(cpu);
            self.thread_ctx.insert(prev, ctx);
            let _ = core
                .kernel_mut()
                .set_thread_state(prev, misp_os::ThreadState::Ready);
            self.install_thread(core, core_idx, next, now + priv_time);
        } else {
            core.stall(cpu, now, now + priv_time);
        }

        let next_tick = core.config().timer.next_tick_after(now);
        if next_tick != Cycles::MAX {
            core.schedule_timer(cpu, next_tick, tick + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = SmpPlatform::new(0);
    }

    #[test]
    fn accessors() {
        let mut p = SmpPlatform::new(8);
        assert_eq!(p.cores(), 8);
        p.set_quantum_ticks(4);
        p.pin_thread(OsThreadId::new(0), 7);
        p.place_thread(OsThreadId::new(1));
    }

    #[test]
    #[should_panic(expected = "core index out of range")]
    fn pin_out_of_range_panics() {
        let mut p = SmpPlatform::new(2);
        p.pin_thread(OsThreadId::new(0), 2);
    }
}
