//! Deterministic observability layer for the MISP reproduction.
//!
//! The simulator's end-of-run aggregates say *what* a run produced; this crate
//! captures *why*, without disturbing the engine's determinism guarantees:
//!
//! - [`TraceBuffer`] — a preallocated, overwrite-oldest ring of
//!   [`TraceEvent`]s (shred spans, ring transitions, proxy episodes, stall
//!   windows, signal sends, TLB/cache miss instants).  Recording is gated by
//!   [`TraceConfig`] and is off by default; when off the only cost on the hot
//!   path is an `Option` discriminant test and the zero-alloc steady-state
//!   guarantee is preserved (the ring is sized once at construction).
//! - [`MetricsRecorder`] — deterministic interval metrics.  The engine
//!   schedules a sampler event every `metrics_interval` sim-cycles inside the
//!   event queue's total order; each firing appends one [`IntervalSample`]
//!   (utilization/TLB/cache deltas plus queue-depth gauges).  Samples are
//!   streamed as JSONL by the harness, one line per interval, and are
//!   byte-identical at any harness thread count.
//! - [`QueueProfile`] — radix-heap self-profiling counters (pushes, pops,
//!   high-water occupancy, bucket redistributions, superseded-slot
//!   replacements), surfaced via `sweep --profile` and the engine bench.
//! - [`chrome_trace_json`] — a Chrome-trace/Perfetto JSON exporter rendering
//!   one track per sequencer with per-lane B/E spans, so a fig4 run can be
//!   opened in [ui.perfetto.dev](https://ui.perfetto.dev) or
//!   `chrome://tracing` and visually inspected.
//!
//! Digests use FNV-1a via [`misp_types::Fnv64`], so trace and metrics streams
//! can be compared across serial and parallel harness executions without
//! shipping the full event payload.
//!
//! # Examples
//!
//! ```
//! use misp_trace::{TraceBuffer, TraceEvent, TraceKind, chrome_trace_json};
//!
//! let mut ring = TraceBuffer::new(16);
//! ring.push(TraceEvent { time: 5, seq: 0, kind: TraceKind::ShredStart });
//! ring.push(TraceEvent { time: 9, seq: 0, kind: TraceKind::ShredEnd });
//! assert_eq!(ring.len(), 2);
//! let json = chrome_trace_json(&ring.events());
//! assert!(json.contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeSet;

use misp_types::Fnv64;
use serde::{Deserialize, Serialize};

/// Configuration for the trace ring and interval metrics sampler, embedded in
/// `misp_sim::SimConfig` as the `trace` field.
///
/// The default is fully off: no ring is allocated, no sampler event is ever
/// scheduled, and every committed golden is byte-identical to a build without
/// this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Enables the structured trace ring.  When `false` no [`TraceBuffer`]
    /// exists and event recording is a single branch on the hot path.
    pub enabled: bool,
    /// Ring capacity in events.  Once full the oldest events are overwritten
    /// (and counted in [`TraceBuffer::dropped`]); the ring never reallocates
    /// after construction.  Clamped to at least 1.
    pub capacity: usize,
    /// Interval metrics period in sim-cycles; `0` disables the sampler.
    /// Non-zero values schedule a sampler event in the event queue's total
    /// order, so samples land at deterministic points of the run regardless
    /// of harness threading.
    pub metrics_interval: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 65_536,
            metrics_interval: 0,
        }
    }
}

impl TraceConfig {
    /// Returns `true` when neither the trace ring nor the sampler is active.
    pub fn is_off(&self) -> bool {
        !self.enabled && self.metrics_interval == 0
    }
}

/// Kind of a structured trace event.
///
/// The first twelve variants mirror `misp_sim::LogKind` in its canonical
/// order, so every existing coarse-log emission site feeds the trace ring
/// with no extra bookkeeping.  [`TraceKind::TlbMiss`] and
/// [`TraceKind::CacheMiss`] are trace-only instants emitted from the memory
/// path; they are deliberately *not* coarse-log kinds so the event-log counts
/// and `log_digest` goldens are untouched by tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceKind {
    /// A sequencer entered Ring 0 (privileged execution window opens).
    RingEnter,
    /// A sequencer returned to Ring 3 (privileged window closes).
    RingExit,
    /// An AMS raised a proxy-execution request.
    ProxyRequest,
    /// An OMS began servicing a proxy request.
    ProxyStart,
    /// A proxy-execution episode completed.
    ProxyDone,
    /// A sequencer was suspended (serialization window opens).
    Suspend,
    /// A suspended sequencer resumed (serialization window closes).
    Resume,
    /// A shred started executing on a sequencer.
    ShredStart,
    /// A shred finished executing on a sequencer.
    ShredEnd,
    /// The OS switched thread context on a sequencer.
    ContextSwitch,
    /// A user-level `SIGNAL` instruction was executed.
    SignalSent,
    /// The OS scheduling timer fired.
    TimerTick,
    /// A memory access missed the TLB (trace-only instant).
    TlbMiss,
    /// A cache-modeled access missed to memory (trace-only instant).
    CacheMiss,
}

impl TraceKind {
    /// Every kind, in canonical (digest) order.
    pub const ALL: [TraceKind; 14] = [
        TraceKind::RingEnter,
        TraceKind::RingExit,
        TraceKind::ProxyRequest,
        TraceKind::ProxyStart,
        TraceKind::ProxyDone,
        TraceKind::Suspend,
        TraceKind::Resume,
        TraceKind::ShredStart,
        TraceKind::ShredEnd,
        TraceKind::ContextSwitch,
        TraceKind::SignalSent,
        TraceKind::TimerTick,
        TraceKind::TlbMiss,
        TraceKind::CacheMiss,
    ];

    /// Stable index of this kind in [`TraceKind::ALL`]; the value hashed into
    /// trace digests.
    pub fn canonical_index(self) -> usize {
        self as usize
    }

    /// Human-readable label, used as the Chrome-trace event name for
    /// instants.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::RingEnter => "RingEnter",
            TraceKind::RingExit => "RingExit",
            TraceKind::ProxyRequest => "ProxyRequest",
            TraceKind::ProxyStart => "ProxyStart",
            TraceKind::ProxyDone => "ProxyDone",
            TraceKind::Suspend => "Suspend",
            TraceKind::Resume => "Resume",
            TraceKind::ShredStart => "ShredStart",
            TraceKind::ShredEnd => "ShredEnd",
            TraceKind::ContextSwitch => "ContextSwitch",
            TraceKind::SignalSent => "SignalSent",
            TraceKind::TimerTick => "TimerTick",
            TraceKind::TlbMiss => "TlbMiss",
            TraceKind::CacheMiss => "CacheMiss",
        }
    }
}

/// One structured trace event: a point on a sequencer's timeline.
///
/// Span kinds (e.g. [`TraceKind::ShredStart`]/[`TraceKind::ShredEnd`]) open
/// and close windows; the exporter pairs them per sequencer lane.  The record
/// is `Copy` and 16 bytes so the ring push is a store, not an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time of the event, in cycles.
    pub time: u64,
    /// Index of the sequencer the event occurred on.
    pub seq: u32,
    /// What happened.
    pub kind: TraceKind,
}

/// Preallocated overwrite-oldest ring of [`TraceEvent`]s.
///
/// The backing `Vec` is sized once at construction (outside the engine's
/// zero-alloc steady-state window) and never grows; once full, each push
/// overwrites the oldest event and bumps [`TraceBuffer::dropped`].
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a ring holding at most `capacity` events (clamped to ≥ 1).
    /// The full backing store is allocated here, up front.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            events: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event; overwrites the oldest once the ring is full.
    /// Never allocates.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events in chronological order (oldest first).
    ///
    /// Allocates a fresh `Vec` — call this at report time, not on the hot
    /// path.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Order-sensitive FNV-1a digest over the retained events plus the
    /// dropped count.  Two runs with identical trace content produce the
    /// same digest regardless of harness thread count.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        for i in 0..self.events.len() {
            let ev = self.events[(self.head + i) % self.capacity];
            h.write_u64(ev.time);
            h.write_u64(u64::from(ev.seq));
            h.write_u64(ev.kind.canonical_index() as u64);
        }
        h.write_u64(self.dropped);
        h.finish()
    }

    /// Consumes the ring into a [`TraceReport`].
    pub fn into_report(self) -> TraceReport {
        let digest = self.digest();
        let dropped = self.dropped;
        let events = self.events();
        TraceReport {
            events,
            dropped,
            digest,
        }
    }
}

/// End-of-run trace artifact: retained events in chronological order, the
/// overwrite count and the stream digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events overwritten because the ring filled up.
    pub dropped: u64,
    /// FNV-1a digest of the retained stream (see [`TraceBuffer::digest`]).
    pub digest: u64,
}

/// Order-sensitive FNV-1a digest over a flat event stream plus a dropped
/// count — the exact formula [`TraceBuffer::digest`] applies to its ring.
pub fn trace_digest(events: &[TraceEvent], dropped: u64) -> u64 {
    let mut h = Fnv64::new();
    for ev in events {
        h.write_u64(ev.time);
        h.write_u64(u64::from(ev.seq));
        h.write_u64(ev.kind.canonical_index() as u64);
    }
    h.write_u64(dropped);
    h.finish()
}

/// Merges per-machine trace reports into one fleet-wide report.
///
/// Machine `m`'s sequencer `s` is renumbered to track `m * stride + s`
/// (`stride` being the per-machine sequencer count), so
/// [`chrome_trace_json`] renders one process track per machine×sequencer
/// pair.  Events merge in `(time, machine, intra-machine order)` order —
/// deterministic for deterministic inputs — dropped counts sum, and the
/// digest is recomputed over the merged stream with [`trace_digest`].
pub fn merge_machine_traces(machines: &[TraceReport], stride: u32) -> TraceReport {
    let mut keyed: Vec<(u64, usize, usize, TraceEvent)> = Vec::new();
    let mut dropped = 0u64;
    for (m, report) in machines.iter().enumerate() {
        dropped += report.dropped;
        for (i, ev) in report.events.iter().enumerate() {
            let remapped = TraceEvent {
                time: ev.time,
                seq: m as u32 * stride + ev.seq,
                kind: ev.kind,
            };
            keyed.push((ev.time, m, i, remapped));
        }
    }
    keyed.sort_unstable_by_key(|&(time, m, i, _)| (time, m, i));
    let events: Vec<TraceEvent> = keyed.into_iter().map(|(_, _, _, ev)| ev).collect();
    let digest = trace_digest(&events, dropped);
    TraceReport {
        events,
        dropped,
        digest,
    }
}

/// Cumulative machine counters snapshotted by the sampler; the recorder
/// diffs consecutive snapshots into per-interval deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Total busy cycles summed over sequencers.
    pub busy: u64,
    /// Total stalled cycles summed over sequencers.
    pub stalled: u64,
    /// Total operations executed summed over sequencers.
    pub ops: u64,
    /// Machine-wide TLB hits.
    pub tlb_hits: u64,
    /// Machine-wide TLB misses.
    pub tlb_misses: u64,
    /// Machine-wide cache misses (0 while the cache model is off).
    pub cache_misses: u64,
}

/// One interval metrics sample: counter *deltas* since the previous sample
/// plus instantaneous depth gauges, taken at a deterministic point in the
/// event queue's total order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalSample {
    /// Simulation time of the sample, in cycles.
    pub t: u64,
    /// Busy cycles accumulated during this interval.
    pub busy: u64,
    /// Stalled cycles accumulated during this interval.
    pub stalled: u64,
    /// Operations executed during this interval.
    pub ops: u64,
    /// Event-queue occupancy at the sample point (gauge).
    pub queue_len: u64,
    /// Shreds in the Ready state at the sample point (run-queue depth gauge).
    pub ready_shreds: u64,
    /// TLB hits during this interval.
    pub tlb_hits: u64,
    /// TLB misses during this interval.
    pub tlb_misses: u64,
    /// Cache misses during this interval (0 while the cache model is off).
    pub cache_misses: u64,
    /// Outstanding admitted-but-uncompleted service requests at the sample
    /// point (admission-queue depth gauge; 0 without a service scenario).
    pub service_outstanding: u64,
}

/// Accumulates [`IntervalSample`]s from periodic [`CounterSnapshot`]s.
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    interval: u64,
    samples: Vec<IntervalSample>,
    prev: CounterSnapshot,
}

impl MetricsRecorder {
    /// Creates a recorder for samples `interval` cycles apart
    /// (`interval` ≥ 1).
    pub fn new(interval: u64) -> Self {
        MetricsRecorder {
            interval: interval.max(1),
            samples: Vec::new(),
            prev: CounterSnapshot::default(),
        }
    }

    /// Sampling period, in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of samples recorded so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Records one sample at time `t` from the machine's *cumulative*
    /// counters plus instantaneous gauges; stores the delta against the
    /// previous snapshot.
    pub fn record(
        &mut self,
        t: u64,
        cumulative: CounterSnapshot,
        queue_len: u64,
        ready_shreds: u64,
        service_outstanding: u64,
    ) {
        let p = self.prev;
        self.samples.push(IntervalSample {
            t,
            busy: cumulative.busy.saturating_sub(p.busy),
            stalled: cumulative.stalled.saturating_sub(p.stalled),
            ops: cumulative.ops.saturating_sub(p.ops),
            queue_len,
            ready_shreds,
            tlb_hits: cumulative.tlb_hits.saturating_sub(p.tlb_hits),
            tlb_misses: cumulative.tlb_misses.saturating_sub(p.tlb_misses),
            cache_misses: cumulative.cache_misses.saturating_sub(p.cache_misses),
            service_outstanding,
        });
        self.prev = cumulative;
    }

    /// Consumes the recorder into a [`MetricsReport`].
    pub fn into_report(self) -> MetricsReport {
        let digest = metrics_digest(&self.samples);
        MetricsReport {
            interval: self.interval,
            samples: self.samples,
            digest,
        }
    }
}

/// Order-sensitive FNV-1a digest over a sample stream; the value recorded in
/// results JSON and compared across harness thread counts.
pub fn metrics_digest(samples: &[IntervalSample]) -> u64 {
    let mut h = Fnv64::new();
    for s in samples {
        h.write_u64(s.t);
        h.write_u64(s.busy);
        h.write_u64(s.stalled);
        h.write_u64(s.ops);
        h.write_u64(s.queue_len);
        h.write_u64(s.ready_shreds);
        h.write_u64(s.tlb_hits);
        h.write_u64(s.tlb_misses);
        h.write_u64(s.cache_misses);
        h.write_u64(s.service_outstanding);
    }
    h.finish()
}

/// End-of-run interval metrics artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// Sampling period, in cycles.
    pub interval: u64,
    /// Samples in time order.
    pub samples: Vec<IntervalSample>,
    /// FNV-1a digest of the stream (see [`metrics_digest`]).
    pub digest: u64,
}

/// Self-profiling counters for the engine's radix-heap event queue.
///
/// These are *simulator* diagnostics, not simulation results: they are
/// deterministic for a given configuration but differ between macro-step and
/// per-op engines, so they live beside — never inside — the results schema.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueProfile {
    /// Events pushed (including superseded-slot replacements).
    pub pushes: u64,
    /// Events popped.
    pub pops: u64,
    /// High-water queue occupancy.
    pub max_len: u64,
    /// Entries moved during bucket redistributions.
    pub redistributions: u64,
    /// Pushes that replaced a live per-sequencer slot in place.
    pub supersessions: u64,
}

impl QueueProfile {
    /// Folds another profile into this one (sums counters, maxes the
    /// high-water mark); used to aggregate across runs.
    pub fn absorb(&mut self, other: &QueueProfile) {
        self.pushes += other.pushes;
        self.pops += other.pops;
        self.max_len = self.max_len.max(other.max_len);
        self.redistributions += other.redistributions;
        self.supersessions += other.supersessions;
    }
}

/// Chrome-trace lane (tid) names, indexed by lane number within a
/// sequencer's track.
const LANE_NAMES: [&str; 5] = ["shred", "ring0", "proxy", "suspended", "events"];

/// Span name rendered for B/E pairs on each lane.
const SPAN_NAMES: [&str; 4] = ["shred", "ring0", "proxy", "suspended"];

/// Maps a kind to its lane and phase: `(lane, Some(true))` opens a span,
/// `(lane, Some(false))` closes one, `(4, None)` is an instant.
fn lane_of(kind: TraceKind) -> (usize, Option<bool>) {
    match kind {
        TraceKind::ShredStart => (0, Some(true)),
        TraceKind::ShredEnd => (0, Some(false)),
        TraceKind::RingEnter => (1, Some(true)),
        TraceKind::RingExit => (1, Some(false)),
        TraceKind::ProxyStart => (2, Some(true)),
        TraceKind::ProxyDone => (2, Some(false)),
        TraceKind::Suspend => (3, Some(true)),
        TraceKind::Resume => (3, Some(false)),
        TraceKind::ProxyRequest
        | TraceKind::ContextSwitch
        | TraceKind::SignalSent
        | TraceKind::TimerTick
        | TraceKind::TlbMiss
        | TraceKind::CacheMiss => (4, None),
    }
}

/// Renders events as Chrome-trace/Perfetto JSON (`{"traceEvents":[...]}`).
///
/// One *process* per sequencer (named `SEQ<i>`) with five *thread* lanes —
/// `shred`, `ring0`, `proxy`, `suspended` and `events` — so Perfetto shows
/// one track group per sequencer.  Span begin/end kinds become `ph:"B"` /
/// `ph:"E"` pairs; point kinds become thread-scoped instants (`ph:"i"`).
/// Timestamps are sim-cycles rendered as microseconds (1 cycle ≡ 1 µs in the
/// viewer).
///
/// Ring truncation can leave spans unbalanced, and shred creation logs an
/// unpaired start marker; the exporter is tolerant: a close with no matching
/// open is skipped, and opens still unclosed at the end are closed at the
/// last timestamp so every span renders with finite extent.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;

    let mut out = String::with_capacity(64 + events.len() * 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |out: &mut String, body: std::fmt::Arguments<'_>| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        let _ = write!(out, "{body}");
    };

    // Metadata first: deterministic order via BTreeSet over (pid, lane).
    let mut lanes_used: BTreeSet<(u32, usize)> = BTreeSet::new();
    for ev in events {
        lanes_used.insert((ev.seq, lane_of(ev.kind).0));
    }
    let pids: BTreeSet<u32> = lanes_used.iter().map(|&(pid, _)| pid).collect();
    for &pid in &pids {
        emit(
            &mut out,
            format_args!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"SEQ{pid}\"}}}}"
            ),
        );
    }
    for &(pid, lane) in &lanes_used {
        emit(
            &mut out,
            format_args!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{lane},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                LANE_NAMES[lane]
            ),
        );
    }

    // Open-span depth per (pid, lane), for imbalance tolerance.
    let mut depth: std::collections::BTreeMap<(u32, usize), u64> =
        std::collections::BTreeMap::new();
    let mut max_ts = 0u64;
    for ev in events {
        max_ts = max_ts.max(ev.time);
        let (lane, phase) = lane_of(ev.kind);
        let pid = ev.seq;
        let ts = ev.time;
        match phase {
            Some(true) => {
                *depth.entry((pid, lane)).or_insert(0) += 1;
                emit(
                    &mut out,
                    format_args!(
                        "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":{lane},\"ts\":{ts},\
                         \"name\":\"{}\"}}",
                        SPAN_NAMES[lane]
                    ),
                );
            }
            Some(false) => {
                let d = depth.entry((pid, lane)).or_insert(0);
                if *d == 0 {
                    // Close with no matching open (ring truncation): skip.
                    continue;
                }
                *d -= 1;
                emit(
                    &mut out,
                    format_args!(
                        "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{lane},\"ts\":{ts},\
                         \"name\":\"{}\"}}",
                        SPAN_NAMES[lane]
                    ),
                );
            }
            None => {
                emit(
                    &mut out,
                    format_args!(
                        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{lane},\"ts\":{ts},\
                         \"s\":\"t\",\"name\":\"{}\"}}",
                        ev.kind.label()
                    ),
                );
            }
        }
    }

    // Synthesize closes for spans still open (run ended mid-span or the
    // opener's close fell off the ring), so Perfetto renders finite spans.
    for (&(pid, lane), &d) in &depth {
        for _ in 0..d {
            emit(
                &mut out,
                format_args!(
                    "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{lane},\"ts\":{max_ts},\
                     \"name\":\"{}\"}}",
                    SPAN_NAMES[lane]
                ),
            );
        }
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, seq: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent { time, seq, kind }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = TraceBuffer::new(3);
        for t in 0..5 {
            ring.push(ev(t, 0, TraceKind::SignalSent));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let times: Vec<u64> = ring.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn ring_capacity_zero_is_clamped() {
        let mut ring = TraceBuffer::new(0);
        ring.push(ev(1, 0, TraceKind::TimerTick));
        ring.push(ev(2, 0, TraceKind::TimerTick));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.events()[0].time, 2);
    }

    #[test]
    fn digest_matches_identical_streams_and_separates_different_ones() {
        let mut a = TraceBuffer::new(8);
        let mut b = TraceBuffer::new(8);
        for t in 0..4 {
            a.push(ev(t, 1, TraceKind::RingEnter));
            b.push(ev(t, 1, TraceKind::RingEnter));
        }
        assert_eq!(a.digest(), b.digest());
        b.push(ev(9, 1, TraceKind::RingExit));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn wrapped_ring_digest_matches_unwrapped_equivalent() {
        // A ring that wrapped and a fresh ring holding the same retained
        // events differ only in the dropped count folded into the digest.
        let mut wrapped = TraceBuffer::new(2);
        for t in 0..4 {
            wrapped.push(ev(t, 0, TraceKind::TimerTick));
        }
        let mut plain = TraceBuffer::new(2);
        plain.push(ev(2, 0, TraceKind::TimerTick));
        plain.push(ev(3, 0, TraceKind::TimerTick));
        assert_eq!(wrapped.events(), plain.events());
        assert_ne!(wrapped.digest(), plain.digest(), "dropped count differs");
    }

    #[test]
    fn trace_digest_matches_the_ring_formula() {
        let mut ring = TraceBuffer::new(2);
        for t in 0..4 {
            ring.push(ev(t, 1, TraceKind::TimerTick));
        }
        assert_eq!(ring.digest(), trace_digest(&ring.events(), ring.dropped()));
    }

    #[test]
    fn fleet_merge_renumbers_tracks_and_interleaves_by_time() {
        let a = TraceReport {
            events: vec![
                ev(1, 0, TraceKind::ShredStart),
                ev(8, 1, TraceKind::ShredEnd),
            ],
            dropped: 2,
            digest: 0,
        };
        let b = TraceReport {
            events: vec![
                ev(1, 0, TraceKind::RingEnter),
                ev(5, 2, TraceKind::RingExit),
            ],
            dropped: 1,
            digest: 0,
        };
        let merged = merge_machine_traces(&[a, b], 4);
        assert_eq!(merged.dropped, 3);
        let view: Vec<(u64, u32)> = merged.events.iter().map(|e| (e.time, e.seq)).collect();
        // Equal times order by machine; machine 1's sequencers shift by the
        // stride.
        assert_eq!(view, vec![(1, 0), (1, 4), (5, 6), (8, 1)]);
        assert_eq!(merged.digest, trace_digest(&merged.events, 3));
        let json = chrome_trace_json(&merged.events);
        assert!(json.contains("\"SEQ0\""));
        assert!(json.contains("\"SEQ4\""), "machine 1, sequencer 0: {json}");
        assert!(json.contains("\"SEQ6\""), "machine 1, sequencer 2: {json}");
    }

    #[test]
    fn metrics_recorder_stores_deltas_and_gauges() {
        let mut rec = MetricsRecorder::new(100);
        let mut c = CounterSnapshot {
            busy: 60,
            stalled: 40,
            ops: 55,
            tlb_hits: 50,
            tlb_misses: 5,
            cache_misses: 0,
        };
        rec.record(100, c, 7, 3, 2);
        c.busy = 150;
        c.ops = 140;
        c.tlb_hits = 130;
        rec.record(200, c, 4, 1, 0);
        let report = rec.into_report();
        assert_eq!(report.samples.len(), 2);
        assert_eq!(report.samples[0].busy, 60);
        assert_eq!(report.samples[0].queue_len, 7);
        assert_eq!(report.samples[1].busy, 90);
        assert_eq!(report.samples[1].stalled, 0);
        assert_eq!(report.samples[1].ops, 85);
        assert_eq!(report.samples[1].tlb_hits, 80);
        assert_eq!(report.samples[1].ready_shreds, 1);
        assert_eq!(report.digest, metrics_digest(&report.samples));
    }

    #[test]
    fn queue_profile_absorb_sums_and_maxes() {
        let mut a = QueueProfile {
            pushes: 10,
            pops: 9,
            max_len: 4,
            redistributions: 2,
            supersessions: 1,
        };
        let b = QueueProfile {
            pushes: 5,
            pops: 5,
            max_len: 7,
            redistributions: 0,
            supersessions: 3,
        };
        a.absorb(&b);
        assert_eq!(a.pushes, 15);
        assert_eq!(a.pops, 14);
        assert_eq!(a.max_len, 7);
        assert_eq!(a.redistributions, 2);
        assert_eq!(a.supersessions, 4);
    }

    #[test]
    fn chrome_trace_pairs_spans_and_tolerates_imbalance() {
        let events = [
            // Unmatched close: must be skipped.
            ev(1, 0, TraceKind::ShredEnd),
            ev(2, 0, TraceKind::ShredStart),
            ev(3, 0, TraceKind::SignalSent),
            ev(5, 1, TraceKind::RingEnter),
            // Shred span closed normally; ring span left open (synthesized
            // close at max ts = 5).
            ev(5, 0, TraceKind::ShredEnd),
        ];
        let json = chrome_trace_json(&events);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        // Two sequencers -> two process_name metadata records.
        assert_eq!(json.matches("process_name").count(), 2);
        assert!(json.contains("\"SEQ0\""));
        assert!(json.contains("\"SEQ1\""));
        // The synthesized ring0 close lands at the last timestamp.
        assert!(json.contains("{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":5,\"name\":\"ring0\"}"));
        assert!(json.ends_with("\n]}\n"));
    }

    #[test]
    fn chrome_trace_is_empty_document_for_no_events() {
        let json = chrome_trace_json(&[]);
        assert_eq!(json, "{\"traceEvents\":[\n]}\n");
    }
}
