//! Typed arenas: dense, index-keyed storage for the simulator's hot tables.
//!
//! Every identifier in this workspace is already a small dense integer
//! ([`crate::SequencerId`], [`crate::ProcessId`], …), so the natural storage
//! for per-entity state is a `Vec` indexed by the id — not a hash map.  This
//! module packages that discipline:
//!
//! * [`ArenaId`] — the trait an id newtype implements to act as an arena key
//!   (a raw-index round trip).  The [`arena_id!`] macro implements it for any
//!   id with `new(u32)` / `index()`, and all workspace ids implement it here.
//! * [`Arena<I, T>`] — a dense table with one `T` per allocated id, where ids
//!   are handed out by [`Arena::alloc`] in insertion order.  Use it when the
//!   arena itself owns id allocation (kernel process/thread tables).
//! * [`ArenaMap<I, T>`] — a sparse-capable map from id to `T` backed by
//!   `Vec<Option<T>>`.  Use it when ids are allocated elsewhere but remain
//!   small and dense (sync objects keyed by [`crate::LockId`], per-process
//!   runtimes keyed by [`crate::ProcessId`]).  Lookups are a bounds check and
//!   a tag test — no hashing on the step path.
//!
//! # Examples
//!
//! ```
//! use misp_types::{Arena, ArenaMap, LockId};
//!
//! let mut names: Arena<LockId, &str> = Arena::new();
//! let a = names.alloc("mutex");
//! let b = names.alloc("barrier");
//! assert_eq!(names[a], "mutex");
//! assert_eq!(names[b], "barrier");
//!
//! let mut owners: ArenaMap<LockId, u32> = ArenaMap::new();
//! owners.insert(b, 7);
//! assert_eq!(owners.get(b), Some(&7));
//! assert_eq!(owners.get(a), None);
//! ```

use core::fmt;
use core::marker::PhantomData;
use core::ops::{Index, IndexMut};

/// An identifier usable as a typed arena key: a cheap round trip to and from
/// a raw dense index.
pub trait ArenaId: Copy {
    /// Creates the id from a raw arena index.
    fn from_index(index: u32) -> Self;
    /// Returns the raw arena index.
    fn index(self) -> u32;
    /// Returns the raw arena index widened for slice indexing.
    #[inline]
    fn as_index(self) -> usize {
        self.index() as usize
    }
}

/// Implements [`ArenaId`] for an id newtype exposing `new(u32)` and
/// `index() -> u32` (the shape every `id_type!` id in this crate has).
#[macro_export]
macro_rules! arena_id {
    ($($name:ty),+ $(,)?) => {
        $(impl $crate::ArenaId for $name {
            #[inline]
            fn from_index(index: u32) -> Self {
                <$name>::new(index)
            }
            #[inline]
            fn index(self) -> u32 {
                <$name>::index(self)
            }
        })+
    };
}

arena_id!(
    crate::SequencerId,
    crate::MispProcessorId,
    crate::OsThreadId,
    crate::ShredId,
    crate::ProcessId,
    crate::MachineId,
    crate::LockId,
);

/// A dense typed arena: one `T` per allocated `I`, ids handed out in
/// insertion order and never reused.
#[derive(Clone, PartialEq, Eq)]
pub struct Arena<I, T> {
    items: Vec<T>,
    _marker: PhantomData<fn(I) -> I>,
}

impl<I: ArenaId, T> Arena<I, T> {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Arena {
            items: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates an empty arena with room for `cap` entries.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            items: Vec::with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Stores `value` and returns its freshly-allocated id.
    pub fn alloc(&mut self, value: T) -> I {
        let id = I::from_index(u32::try_from(self.items.len()).expect("arena overflow"));
        self.items.push(value);
        id
    }

    /// Number of entries allocated.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the arena is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The id the next [`Arena::alloc`] call will return.
    #[must_use]
    pub fn next_id(&self) -> I {
        I::from_index(self.items.len() as u32)
    }

    /// Whether `id` names an allocated entry.
    #[must_use]
    pub fn contains(&self, id: I) -> bool {
        id.as_index() < self.items.len()
    }

    /// The entry for `id`, or `None` when out of range.
    #[must_use]
    pub fn get(&self, id: I) -> Option<&T> {
        self.items.get(id.as_index())
    }

    /// Mutable access to the entry for `id`, or `None` when out of range.
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.items.get_mut(id.as_index())
    }

    /// Iterates `(id, &entry)` in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, t)| (I::from_index(i as u32), t))
    }

    /// Iterates `(id, &mut entry)` in allocation order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (I, &mut T)> {
        self.items
            .iter_mut()
            .enumerate()
            .map(|(i, t)| (I::from_index(i as u32), t))
    }

    /// The allocated ids in order.
    pub fn ids(&self) -> impl Iterator<Item = I> + '_ {
        (0..self.items.len() as u32).map(I::from_index)
    }

    /// The underlying dense slice, indexed by raw id.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Consumes the arena, returning the entries in allocation order.
    #[must_use]
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<I: ArenaId, T> Default for Arena<I, T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<I: ArenaId, T> Index<I> for Arena<I, T> {
    type Output = T;
    #[inline]
    fn index(&self, id: I) -> &T {
        &self.items[id.as_index()]
    }
}

impl<I: ArenaId, T> IndexMut<I> for Arena<I, T> {
    #[inline]
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.items[id.as_index()]
    }
}

impl<I: ArenaId, T: fmt::Debug> fmt::Debug for Arena<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.items.iter().enumerate())
            .finish()
    }
}

/// A map from a dense id to `T`, backed by `Vec<Option<T>>`: supports holes
/// (removal, externally-allocated ids) while keeping lookups hash-free.
#[derive(Clone, PartialEq, Eq)]
pub struct ArenaMap<I, T> {
    slots: Vec<Option<T>>,
    len: usize,
    _marker: PhantomData<fn(I) -> I>,
}

impl<I: ArenaId, T> ArenaMap<I, T> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        ArenaMap {
            slots: Vec::new(),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// Creates an empty map with room for ids below `cap`.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        ArenaMap {
            slots: Vec::with_capacity(cap),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entry is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `id`, returning the previous entry if any.
    pub fn insert(&mut self, id: I, value: T) -> Option<T> {
        let i = id.as_index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let old = self.slots[i].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the entry at `id`.
    pub fn remove(&mut self, id: I) -> Option<T> {
        let old = self.slots.get_mut(id.as_index()).and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Whether `id` has an entry.
    #[must_use]
    pub fn contains(&self, id: I) -> bool {
        self.get(id).is_some()
    }

    /// The entry at `id`, if occupied.
    #[inline]
    #[must_use]
    pub fn get(&self, id: I) -> Option<&T> {
        self.slots.get(id.as_index()).and_then(Option::as_ref)
    }

    /// Mutable access to the entry at `id`, if occupied.
    #[inline]
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.slots.get_mut(id.as_index()).and_then(Option::as_mut)
    }

    /// The entry at `id`, inserting `default()` first when vacant.
    pub fn get_or_insert_with(&mut self, id: I, default: impl FnOnce() -> T) -> &mut T {
        let i = id.as_index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        if self.slots[i].is_none() {
            self.slots[i] = Some(default());
            self.len += 1;
        }
        self.slots[i].as_mut().expect("just filled")
    }

    /// Iterates occupied `(id, &entry)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|t| (I::from_index(i as u32), t)))
    }

    /// Iterates occupied `(id, &mut entry)` pairs in id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (I, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_mut().map(|t| (I::from_index(i as u32), t)))
    }

    /// Iterates occupied ids in order.
    pub fn ids(&self) -> impl Iterator<Item = I> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// Removes every entry, keeping the backing storage.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }
}

impl<I: ArenaId, T> Default for ArenaMap<I, T> {
    fn default() -> Self {
        ArenaMap::new()
    }
}

impl<I: ArenaId, T: fmt::Debug> fmt::Debug for ArenaMap<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(
                self.slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.as_ref().map(|t| (i, t))),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LockId, ProcessId, SequencerId};

    #[test]
    fn arena_allocates_dense_ids_in_order() {
        let mut arena: Arena<ProcessId, String> = Arena::new();
        assert!(arena.is_empty());
        let a = arena.alloc("init".to_string());
        let b = arena.alloc("shell".to_string());
        assert_eq!(a, ProcessId::new(0));
        assert_eq!(b, ProcessId::new(1));
        assert_eq!(arena.next_id(), ProcessId::new(2));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena[a], "init");
        arena[b].push('!');
        assert_eq!(arena.get(b).map(String::as_str), Some("shell!"));
        assert_eq!(arena.get(ProcessId::new(9)), None);
        assert!(arena.contains(a) && !arena.contains(ProcessId::new(2)));
        let ids: Vec<_> = arena.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, b]);
        assert_eq!(arena.as_slice().len(), 2);
    }

    #[test]
    fn arena_map_supports_holes_and_reinsert() {
        let mut map: ArenaMap<LockId, u32> = ArenaMap::new();
        assert_eq!(map.insert(LockId::new(3), 30), None);
        assert_eq!(map.insert(LockId::new(1), 10), None);
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(LockId::new(0)), None);
        assert_eq!(map.get(LockId::new(3)), Some(&30));
        assert_eq!(map.insert(LockId::new(3), 31), Some(30));
        assert_eq!(map.len(), 2, "overwrite does not grow");
        assert_eq!(map.remove(LockId::new(3)), Some(31));
        assert_eq!(map.remove(LockId::new(3)), None);
        assert_eq!(map.len(), 1);
        let pairs: Vec<_> = map.iter().map(|(id, &v)| (id.index(), v)).collect();
        assert_eq!(pairs, vec![(1, 10)]);
        *map.get_or_insert_with(LockId::new(5), || 0) += 7;
        assert_eq!(map.get(LockId::new(5)), Some(&7));
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.get(LockId::new(1)), None);
    }

    #[test]
    fn arena_id_round_trips_workspace_ids() {
        let s = <SequencerId as ArenaId>::from_index(4);
        assert_eq!(s, SequencerId::new(4));
        assert_eq!(ArenaId::index(s), 4);
        assert_eq!(s.as_index(), 4usize);
    }
}
