//! The architectural cost model.
//!
//! Section 5.1 of the paper models MISP's synchrony overhead in terms of one
//! key parameter, `signal`, the latency of inter-sequencer communication, plus
//! the time spent in privileged OS code (`priv`).  Section 5.2 states the
//! prototype assumes a conservative `signal` of 5000 cycles and Section 5.3
//! sweeps 0 (ideal), 500 and 1000 cycles.  [`CostModel`] collects that
//! parameter and every other service cost the simulator charges.

use crate::Cycles;
use serde::{Deserialize, Serialize};

/// The cost of one inter-sequencer signal, in cycles.
///
/// The paper considers four design points (Figure 5): an ideal zero-cost
/// hardware implementation, aggressive hardware at 500 and 1000 cycles, and a
/// conservative microcode-based implementation at 5000 cycles.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalCost {
    /// Ideal hardware: signaling is free (the Figure 5 baseline).
    Ideal,
    /// Aggressive hardware implementation: 500 cycles.
    Aggressive500,
    /// Aggressive hardware implementation: 1000 cycles.
    Aggressive1000,
    /// Conservative microcode-based implementation: 5000 cycles (the default
    /// assumed throughout the paper's evaluation).
    #[default]
    Microcode5000,
    /// An arbitrary signal cost, for sensitivity sweeps beyond the paper's
    /// design points.
    Custom(u64),
}

impl SignalCost {
    /// Returns the signal latency in cycles.
    #[must_use]
    pub const fn cycles(self) -> Cycles {
        match self {
            SignalCost::Ideal => Cycles::new(0),
            SignalCost::Aggressive500 => Cycles::new(500),
            SignalCost::Aggressive1000 => Cycles::new(1000),
            SignalCost::Microcode5000 => Cycles::new(5000),
            SignalCost::Custom(c) => Cycles::new(c),
        }
    }

    /// The design points evaluated by Figure 5 of the paper, in the order the
    /// figure presents them (500, 1000, 5000), excluding the ideal baseline.
    #[must_use]
    pub const fn figure5_points() -> [SignalCost; 3] {
        [
            SignalCost::Aggressive500,
            SignalCost::Aggressive1000,
            SignalCost::Microcode5000,
        ]
    }
}

/// Cycle latencies charged by the cache hierarchy (`misp-cache`) for each
/// level a memory access resolves at, plus the cost of a coherence
/// invalidation round.
///
/// The paper's evaluation charges a flat cost per memory touch; the cache
/// model refines that into per-level latencies so memory-bound workloads can
/// distinguish locality regimes.  The defaults approximate a 3 GHz IA-32
/// server of the paper's era: a 2-cycle L1, a mid-teens-cycle shared L2 and a
/// DRAM access north of 200 cycles.
///
/// # Examples
///
/// ```
/// use misp_types::{CacheCostModel, Cycles};
///
/// let costs = CacheCostModel::default();
/// assert!(costs.l1_hit < costs.l2_hit);
/// assert!(costs.l2_hit < costs.memory);
/// assert_eq!(CacheCostModel::default(), costs);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheCostModel {
    /// Latency of an access that hits the sequencer's private L1.
    pub l1_hit: Cycles,
    /// Latency of an L1 miss that hits the processor's shared L2.
    pub l2_hit: Cycles,
    /// Latency of an access that misses the whole hierarchy (DRAM).
    pub memory: Cycles,
    /// Additional latency charged to a store that must invalidate the line in
    /// remote caches before completing.
    pub invalidation: Cycles,
}

impl Default for CacheCostModel {
    fn default() -> Self {
        CacheCostModel {
            l1_hit: Cycles::new(2),
            l2_hit: Cycles::new(14),
            memory: Cycles::new(220),
            invalidation: Cycles::new(40),
        }
    }
}

/// Cycle costs charged by the simulator for every architectural and OS-level
/// service the paper's evaluation depends on.
///
/// Construct with [`CostModel::default`] for the paper's assumed parameters or
/// with [`CostModel::builder`] to override individual costs.
///
/// # Examples
///
/// ```
/// use misp_types::{CostModel, SignalCost, Cycles};
///
/// let costs = CostModel::builder()
///     .signal(SignalCost::Aggressive500)
///     .syscall_service(Cycles::new(2_000))
///     .build();
/// assert_eq!(costs.signal.cycles(), Cycles::new(500));
/// assert_eq!(costs.syscall_service, Cycles::new(2_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Latency of one inter-sequencer signal (the `signal` term of Eqs. 1–3).
    pub signal: SignalCost,
    /// Kernel time to service a system call (part of the `priv` term).
    pub syscall_service: Cycles,
    /// Kernel time to service a page fault (populate the PTE, possibly zero
    /// the page).  Compulsory faults dominate Table 1.
    pub page_fault_service: Cycles,
    /// Kernel time to service a timer interrupt (scheduler tick).
    pub timer_service: Cycles,
    /// Kernel time to service an uncategorized device interrupt.
    pub interrupt_service: Cycles,
    /// Cost of an OS thread context switch, excluding AMS state save/restore.
    pub context_switch: Cycles,
    /// Additional cost to save or restore the aggregate state of one AMS on a
    /// context switch (Section 2.2: the cumulative AMS save area).
    pub ams_state_save: Cycles,
    /// Hardware page-walk latency on a TLB miss (no OS involvement,
    /// Section 2.3).
    pub tlb_walk: Cycles,
    /// Cost of the fly-weight asynchronous control transfer performed by the
    /// YIELD-CONDITIONAL mechanism (save next EIP, jump to handler).
    pub yield_transfer: Cycles,
    /// User-level cost of a light-weight shred context switch performed by the
    /// ShredLib gang scheduler (Figure 3).
    pub shred_context_switch: Cycles,
    /// User-level cost of one acquire/release pair on the work-queue mutex.
    pub queue_lock: Cycles,
    /// Interval between timer interrupts on an OS-visible CPU.
    pub timer_interval: Cycles,
}

impl CostModel {
    /// Returns a builder initialized with the default (paper) parameters.
    #[must_use]
    pub fn builder() -> CostModelBuilder {
        CostModelBuilder {
            model: CostModel::default(),
        }
    }

    /// The signal latency in cycles (shorthand for `self.signal.cycles()`).
    #[must_use]
    pub fn signal_cycles(&self) -> Cycles {
        self.signal.cycles()
    }

    /// Serialization overhead across an OMS ring transition, **excluding** the
    /// privileged service time: `2 * signal` (Equation 1 minus `priv`).
    #[must_use]
    pub fn serialize_overhead(&self) -> Cycles {
        self.signal.cycles() * 2
    }

    /// Overhead incurred by a shred whose AMS requests proxy execution:
    /// `3 * signal` (Equation 2).
    #[must_use]
    pub fn proxy_egress_overhead(&self) -> Cycles {
        self.signal.cycles() * 3
    }

    /// Overhead incurred by the OMS to handle a proxy request, excluding the
    /// privileged service time: `signal + 2 * signal` (Equation 3 minus
    /// `priv`).
    #[must_use]
    pub fn proxy_ingress_overhead(&self) -> Cycles {
        self.signal.cycles() * 3
    }
}

impl Default for CostModel {
    /// The default parameters assumed by the paper's evaluation: a 5000-cycle
    /// microcode signal, with OS service costs chosen to be representative of
    /// a 3.0 GHz IA-32 server running Windows Server 2003.
    fn default() -> Self {
        CostModel {
            signal: SignalCost::Microcode5000,
            syscall_service: Cycles::new(3_000),
            page_fault_service: Cycles::new(8_000),
            timer_service: Cycles::new(6_000),
            interrupt_service: Cycles::new(4_000),
            context_switch: Cycles::new(10_000),
            ams_state_save: Cycles::new(1_500),
            tlb_walk: Cycles::new(60),
            yield_transfer: Cycles::new(200),
            shred_context_switch: Cycles::new(300),
            queue_lock: Cycles::new(120),
            // 3 GHz * 1 ms Windows timer tick would be 3M cycles; the
            // simulator runs scaled-down workloads, so the default tick is
            // scaled correspondingly (see EXPERIMENTS.md).
            timer_interval: Cycles::new(3_000_000),
        }
    }
}

/// Builder for [`CostModel`].
#[derive(Debug, Clone)]
pub struct CostModelBuilder {
    model: CostModel,
}

macro_rules! builder_setter {
    ($(#[$doc:meta])* $field:ident: Cycles) => {
        $(#[$doc])*
        #[must_use]
        pub fn $field(mut self, value: Cycles) -> Self {
            self.model.$field = value;
            self
        }
    };
}

impl CostModelBuilder {
    /// Sets the inter-sequencer signal cost.
    #[must_use]
    pub fn signal(mut self, value: SignalCost) -> Self {
        self.model.signal = value;
        self
    }

    builder_setter!(
        /// Sets the system-call service cost.
        syscall_service: Cycles
    );
    builder_setter!(
        /// Sets the page-fault service cost.
        page_fault_service: Cycles
    );
    builder_setter!(
        /// Sets the timer-interrupt service cost.
        timer_service: Cycles
    );
    builder_setter!(
        /// Sets the uncategorized-interrupt service cost.
        interrupt_service: Cycles
    );
    builder_setter!(
        /// Sets the OS context-switch cost.
        context_switch: Cycles
    );
    builder_setter!(
        /// Sets the per-AMS state save/restore cost.
        ams_state_save: Cycles
    );
    builder_setter!(
        /// Sets the hardware TLB page-walk cost.
        tlb_walk: Cycles
    );
    builder_setter!(
        /// Sets the YIELD-CONDITIONAL control-transfer cost.
        yield_transfer: Cycles
    );
    builder_setter!(
        /// Sets the ShredLib light-weight shred context-switch cost.
        shred_context_switch: Cycles
    );
    builder_setter!(
        /// Sets the work-queue lock acquire/release cost.
        queue_lock: Cycles
    );
    builder_setter!(
        /// Sets the interval between timer interrupts.
        timer_interval: Cycles
    );

    /// Finishes the builder, producing the cost model.
    #[must_use]
    pub fn build(self) -> CostModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_cost_points() {
        assert_eq!(SignalCost::Ideal.cycles(), Cycles::ZERO);
        assert_eq!(SignalCost::Aggressive500.cycles(), Cycles::new(500));
        assert_eq!(SignalCost::Aggressive1000.cycles(), Cycles::new(1000));
        assert_eq!(SignalCost::Microcode5000.cycles(), Cycles::new(5000));
        assert_eq!(SignalCost::Custom(123).cycles(), Cycles::new(123));
        assert_eq!(SignalCost::default(), SignalCost::Microcode5000);
        assert_eq!(
            SignalCost::figure5_points(),
            [
                SignalCost::Aggressive500,
                SignalCost::Aggressive1000,
                SignalCost::Microcode5000
            ]
        );
    }

    #[test]
    fn default_model_matches_paper_assumptions() {
        let m = CostModel::default();
        assert_eq!(m.signal_cycles(), Cycles::new(5000));
        assert_eq!(m.serialize_overhead(), Cycles::new(10_000));
        assert_eq!(m.proxy_egress_overhead(), Cycles::new(15_000));
        assert_eq!(m.proxy_ingress_overhead(), Cycles::new(15_000));
    }

    #[test]
    fn builder_overrides() {
        let m = CostModel::builder()
            .signal(SignalCost::Ideal)
            .syscall_service(Cycles::new(1))
            .page_fault_service(Cycles::new(2))
            .timer_service(Cycles::new(3))
            .interrupt_service(Cycles::new(4))
            .context_switch(Cycles::new(5))
            .ams_state_save(Cycles::new(6))
            .tlb_walk(Cycles::new(7))
            .yield_transfer(Cycles::new(8))
            .shred_context_switch(Cycles::new(9))
            .queue_lock(Cycles::new(10))
            .timer_interval(Cycles::new(11))
            .build();
        assert_eq!(m.signal, SignalCost::Ideal);
        assert_eq!(m.syscall_service, Cycles::new(1));
        assert_eq!(m.page_fault_service, Cycles::new(2));
        assert_eq!(m.timer_service, Cycles::new(3));
        assert_eq!(m.interrupt_service, Cycles::new(4));
        assert_eq!(m.context_switch, Cycles::new(5));
        assert_eq!(m.ams_state_save, Cycles::new(6));
        assert_eq!(m.tlb_walk, Cycles::new(7));
        assert_eq!(m.yield_transfer, Cycles::new(8));
        assert_eq!(m.shred_context_switch, Cycles::new(9));
        assert_eq!(m.queue_lock, Cycles::new(10));
        assert_eq!(m.timer_interval, Cycles::new(11));
        assert_eq!(m.serialize_overhead(), Cycles::ZERO);
    }

    #[test]
    fn serde_round_trip() {
        let m = CostModel::default();
        let json = serde_json::to_string(&m).unwrap();
        let back: CostModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
