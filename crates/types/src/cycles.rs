//! Cycle arithmetic.
//!
//! All simulated time in the workspace is expressed in processor clock cycles
//! using the [`Cycles`] newtype.  The paper's cost parameters (e.g. the
//! 500/1000/5000-cycle inter-sequencer `signal` cost studied in Figure 5) are
//! all plain cycle counts, so a single monotonic 64-bit counter is sufficient.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An absolute point in simulated time, or a span of simulated time, measured
/// in clock cycles.
///
/// `Cycles` is deliberately a thin wrapper over `u64`: it exists to prevent
/// accidental mixing of cycle counts with other integer quantities (event
/// counts, page numbers, …), per the newtype guidance of the Rust API
/// guidelines.
///
/// # Examples
///
/// ```
/// use misp_types::Cycles;
///
/// let a = Cycles::new(100);
/// let b = Cycles::new(250);
/// assert_eq!((a + b).as_u64(), 350);
/// assert_eq!(b.saturating_sub(a), Cycles::new(150));
/// assert_eq!(a.saturating_sub(b), Cycles::ZERO);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cycles(u64);

/// A span of simulated time.  Alias of [`Cycles`] kept for readability at call
/// sites that deal in durations rather than absolute timestamps.
pub type Duration = Cycles;

impl Cycles {
    /// The zero cycle count.
    pub const ZERO: Cycles = Cycles(0);
    /// The maximum representable cycle count.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Creates a cycle count from a raw `u64`.
    #[inline]
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the raw cycle count as an `f64`, for ratio computations in the
    /// experiment harnesses.
    #[inline]
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Returns `true` when this is the zero cycle count.
    #[inline]
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of wrapping when `rhs`
    /// exceeds `self`.
    #[inline]
    #[must_use]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition: clamps at [`Cycles::MAX`].
    #[inline]
    #[must_use]
    pub const fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Checked addition, returning `None` on overflow.
    #[inline]
    #[must_use]
    pub const fn checked_add(self, rhs: Cycles) -> Option<Cycles> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Cycles(v)),
            None => None,
        }
    }

    /// Multiplies the cycle count by an integer scale factor.
    #[inline]
    #[must_use]
    pub const fn scaled(self, factor: u64) -> Cycles {
        Cycles(self.0 * factor)
    }

    /// Returns the larger of two cycle counts.
    #[inline]
    #[must_use]
    pub const fn max(self, other: Cycles) -> Cycles {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two cycle counts.
    #[inline]
    #[must_use]
    pub const fn min(self, other: Cycles) -> Cycles {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

impl From<Cycles> for u64 {
    fn from(c: Cycles) -> Self {
        c.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Cycles> for Cycles {
    fn sum<I: Iterator<Item = &'a Cycles>>(iter: I) -> Cycles {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let c = Cycles::new(42);
        assert_eq!(c.as_u64(), 42);
        assert!(!c.is_zero());
        assert!(Cycles::ZERO.is_zero());
        assert_eq!(Cycles::from(7u64), Cycles::new(7));
        assert_eq!(u64::from(Cycles::new(9)), 9);
    }

    #[test]
    fn arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(3);
        assert_eq!(a + b, Cycles::new(13));
        assert_eq!(a - b, Cycles::new(7));
        assert_eq!(a * 4, Cycles::new(40));
        assert_eq!(a / 2, Cycles::new(5));
        let mut c = a;
        c += b;
        assert_eq!(c, Cycles::new(13));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(10)), Cycles::ZERO);
        assert_eq!(
            Cycles::MAX.saturating_add(Cycles::new(1)),
            Cycles::MAX,
            "saturating add clamps at MAX"
        );
        assert_eq!(Cycles::MAX.checked_add(Cycles::new(1)), None);
        assert_eq!(
            Cycles::new(1).checked_add(Cycles::new(2)),
            Some(Cycles::new(3))
        );
    }

    #[test]
    fn min_max_and_scaled() {
        let a = Cycles::new(5);
        let b = Cycles::new(8);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.scaled(3), Cycles::new(15));
    }

    #[test]
    fn sum_iterator() {
        let total: Cycles = (1..=4u64).map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(10));
        let v = [Cycles::new(2), Cycles::new(3)];
        let total: Cycles = v.iter().sum();
        assert_eq!(total, Cycles::new(5));
    }

    #[test]
    fn display_and_serde() {
        assert_eq!(Cycles::new(12).to_string(), "12 cycles");
        let json = serde_json::to_string(&Cycles::new(99)).unwrap();
        assert_eq!(json, "99");
        let back: Cycles = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Cycles::new(99));
    }

    #[test]
    fn ordering() {
        assert!(Cycles::new(1) < Cycles::new(2));
        assert!(Cycles::new(2) <= Cycles::new(2));
    }
}
