//! The workspace-wide error type.

use crate::{MispProcessorId, SequencerId, ShredId};
use core::fmt;

/// Convenience alias for `Result<T, MispError>`.
pub type Result<T> = core::result::Result<T, MispError>;

/// Errors raised by the MISP architecture model and its runtime.
///
/// Variants map to architecturally meaningful failure conditions (e.g. a
/// `SIGNAL` naming a sequencer outside the current MISP processor) rather than
/// to implementation details, so they remain stable as the simulator evolves.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MispError {
    /// A `SIGNAL` or other sequencer-aware operation named a sequencer that
    /// does not exist in the current MISP processor.
    UnknownSequencer(SequencerId),
    /// An operation named a MISP processor that does not exist in the machine.
    UnknownProcessor(MispProcessorId),
    /// An operation named a shred the runtime does not know about.
    UnknownShred(ShredId),
    /// An operation that only the OS-managed sequencer may perform (e.g. a
    /// Ring 0 transition) was attempted on an application-managed sequencer
    /// without proxy execution.
    PrivilegeViolation {
        /// The offending sequencer.
        sequencer: SequencerId,
        /// Description of the attempted operation.
        operation: &'static str,
    },
    /// A machine or processor configuration was structurally invalid (e.g. a
    /// MISP processor with zero sequencers, or more OMSs than sequencers).
    InvalidConfiguration(String),
    /// A workload definition was internally inconsistent (e.g. a shred joins
    /// on a shred that is never created).
    InvalidWorkload(String),
    /// The runtime attempted an operation on a synchronization object in an
    /// invalid state (e.g. unlocking a mutex it does not hold).
    SynchronizationMisuse(String),
    /// The simulation exceeded its configured cycle budget without all shreds
    /// completing — usually a deadlock in the simulated program.
    CycleBudgetExhausted {
        /// The configured budget, in cycles.
        budget: u64,
    },
    /// The simulated program deadlocked: no sequencer can make progress and no
    /// future event is pending.
    Deadlock {
        /// Human-readable description of the blocked entities.
        detail: String,
    },
}

impl fmt::Display for MispError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MispError::UnknownSequencer(sid) => {
                write!(f, "unknown sequencer {sid}")
            }
            MispError::UnknownProcessor(pid) => {
                write!(f, "unknown MISP processor {pid}")
            }
            MispError::UnknownShred(sid) => write!(f, "unknown shred {sid}"),
            MispError::PrivilegeViolation {
                sequencer,
                operation,
            } => write!(
                f,
                "privilege violation: {operation} attempted on application-managed sequencer {sequencer}"
            ),
            MispError::InvalidConfiguration(msg) => {
                write!(f, "invalid machine configuration: {msg}")
            }
            MispError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            MispError::SynchronizationMisuse(msg) => {
                write!(f, "synchronization misuse: {msg}")
            }
            MispError::CycleBudgetExhausted { budget } => {
                write!(f, "cycle budget of {budget} cycles exhausted before completion")
            }
            MispError::Deadlock { detail } => write!(f, "simulated program deadlocked: {detail}"),
        }
    }
}

impl std::error::Error for MispError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(MispError, &str)> = vec![
            (
                MispError::UnknownSequencer(SequencerId::new(3)),
                "unknown sequencer SEQ3",
            ),
            (
                MispError::UnknownProcessor(MispProcessorId::new(1)),
                "unknown MISP processor MISP1",
            ),
            (
                MispError::UnknownShred(ShredId::new(9)),
                "unknown shred SHR9",
            ),
            (
                MispError::CycleBudgetExhausted { budget: 10 },
                "cycle budget of 10 cycles exhausted before completion",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn privilege_violation_names_the_sequencer() {
        let err = MispError::PrivilegeViolation {
            sequencer: SequencerId::new(2),
            operation: "ring 0 entry",
        };
        assert!(err.to_string().contains("SEQ2"));
        assert!(err.to_string().contains("ring 0 entry"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<MispError>();
    }

    #[test]
    fn result_alias_works() {
        fn might_fail(ok: bool) -> Result<u32> {
            if ok {
                Ok(1)
            } else {
                Err(MispError::InvalidConfiguration("empty".to_string()))
            }
        }
        assert_eq!(might_fail(true).unwrap(), 1);
        assert!(might_fail(false).is_err());
    }
}
