//! Streaming FNV-1a hasher used for order-sensitive artifact digests.
//!
//! The harness and trace layers need a digest that is cheap, dependency-free
//! and stable across platforms so that goldens and determinism tests can
//! compare runs byte-for-byte.  FNV-1a over a canonical `u64` encoding of
//! each record fits: it is order-sensitive (reordering events changes the
//! digest) and the constants are fixed by the FNV specification.

/// Streaming 64-bit FNV-1a hasher.
///
/// Feed it words with [`Fnv64::write_u64`] and read the digest with
/// [`Fnv64::finish`].  The same constants are used by
/// `misp_sim::EventLog::digest`, so digests from different layers are
/// directly comparable in spirit (though they hash different record shapes).
///
/// # Examples
///
/// ```
/// use misp_types::Fnv64;
///
/// let mut h = Fnv64::new();
/// h.write_u64(1);
/// h.write_u64(2);
/// let a = h.finish();
///
/// let mut h2 = Fnv64::new();
/// h2.write_u64(2);
/// h2.write_u64(1);
/// assert_ne!(a, h2.finish(), "FNV-1a is order-sensitive");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// FNV-1a 64-bit offset basis.
    pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a 64-bit prime.
    pub const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher initialised with the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 {
            state: Self::OFFSET,
        }
    }

    /// Absorbs one `u64` as eight little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Returns the current digest without consuming the hasher.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest_is_the_offset_basis() {
        assert_eq!(Fnv64::new().finish(), Fnv64::OFFSET);
    }

    #[test]
    fn digest_is_deterministic_and_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(7);
        a.write_u64(9);
        let mut b = Fnv64::new();
        b.write_u64(7);
        b.write_u64(9);
        assert_eq!(a.finish(), b.finish());

        let mut c = Fnv64::new();
        c.write_u64(9);
        c.write_u64(7);
        assert_ne!(a.finish(), c.finish());
    }
}
