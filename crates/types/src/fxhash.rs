//! A fast, deterministic hasher for simulator-internal tables.
//!
//! `std`'s default `RandomState` is seeded per process, which is fine for
//! correctness but (a) costs SipHash rounds on every lookup in the engine's
//! hottest paths (page tables, residency maps) and (b) makes iteration order
//! vary between runs, which deterministic code must never rely on.  This
//! module provides the classic Fx multiply-rotate hash (as used by rustc):
//! not DoS-resistant, but extremely cheap and the same in every process.
//!
//! Use it only for tables whose keys come from the simulation itself (page
//! numbers, identifiers) — never for attacker-controlled input.

// This module is the one sanctioned home for the std hash tables: they are
// re-exported below with the fixed-seed FxBuildHasher (clippy.toml bans them
// with the default RandomState everywhere else).
#![allow(clippy::disallowed_types)]

// lint: determinism-ok(std tables re-exported below with the fixed-seed FxBuildHasher)
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher.  Deterministic across processes and runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// The `BuildHasher` for [`FxHasher`]; `Default` yields the zero state, so
/// equal keys hash equally in every process.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the deterministic [`FxHasher`].
// lint: determinism-ok(FxBuildHasher is fixed-seed; this alias IS the sanctioned spelling)
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the deterministic [`FxHasher`].
// lint: determinism-ok(FxBuildHasher is fixed-seed; this alias IS the sanctioned spelling)
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_builders() {
        let a = FxBuildHasher::default().hash_one(0x1234_5678_u64);
        let b = FxBuildHasher::default().hash_one(0x1234_5678_u64);
        assert_eq!(a, b);
        assert_ne!(a, FxBuildHasher::default().hash_one(0x1234_5679_u64));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(1 << 40, "big");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.get(&(1 << 40)), Some(&"big"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn byte_writes_match_word_writes_for_exact_chunks() {
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
