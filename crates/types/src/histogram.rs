//! A deterministic log-bucketed latency histogram.
//!
//! The request-serving scenarios record one latency sample per completed
//! request and report percentiles (p50/p95/p99/p999) in the sweep results.
//! Because those results are committed as goldens, the histogram is built for
//! bit-reproducibility:
//!
//! * integer-only recording and percentile extraction (no floating point in
//!   any committed value);
//! * HDR-style buckets — exact below 64, then 32 linear sub-buckets per
//!   power of two (≈3% relative resolution) — stored sparsely in a
//!   [`BTreeMap`] so serialization order is defined;
//! * a commutative, associative [`Histogram::merge`], so folding partial
//!   histograms in any order produces identical results (the property the
//!   parallel sweep harness and its proptest rely on).

use serde::Serialize;
use std::collections::BTreeMap;

/// Number of linear sub-buckets per power of two above the exact range.
const SUB_BUCKETS: u64 = 32;
/// Sub-bucket resolution bits (`2^SUB_BITS == SUB_BUCKETS`).
const SUB_BITS: u32 = 5;
/// Values below `2 * SUB_BUCKETS` are stored exactly (one bucket per value).
const EXACT_LIMIT: u64 = 2 * SUB_BUCKETS;

/// A sparse log-bucketed histogram of `u64` samples (latencies in cycles).
///
/// # Examples
///
/// ```
/// use misp_types::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v * 1000);
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.value_at_quantile(50, 100);
/// assert!((48_000..=55_000).contains(&p50), "{p50}");
/// assert_eq!(h.value_at_quantile(100, 100), h.max());
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize)]
pub struct Histogram {
    /// Sample count per bucket index; absent buckets are empty.
    buckets: BTreeMap<u32, u64>,
    /// Total samples recorded.
    count: u64,
    /// Exact sum of all samples (saturating).
    sum: u64,
    /// Exact minimum sample; meaningful only when `count > 0`.
    min: u64,
    /// Exact maximum sample; meaningful only when `count > 0`.
    max: u64,
}

/// The bucket index a value lands in.
fn bucket_of(value: u64) -> u32 {
    if value < EXACT_LIMIT {
        return value as u32;
    }
    // value >= 64 ⇒ floor(log2) >= 6.
    let h = 63 - value.leading_zeros();
    let sub = ((value >> (h - SUB_BITS)) & (SUB_BUCKETS - 1)) as u32;
    EXACT_LIMIT as u32 + (h - SUB_BITS - 1) * SUB_BUCKETS as u32 + sub
}

/// The largest value that maps into `bucket` (the reported percentile value).
fn bucket_upper_bound(bucket: u32) -> u64 {
    if u64::from(bucket) < EXACT_LIMIT {
        return u64::from(bucket);
    }
    let rel = u64::from(bucket) - EXACT_LIMIT;
    let h = (rel / SUB_BUCKETS) as u32 + SUB_BITS + 1;
    let sub = rel % SUB_BUCKETS;
    (1u64 << h) + (sub + 1) * (1u64 << (h - SUB_BITS)) - 1
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.buckets.entry(bucket_of(value)).or_insert(0) += n;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
    }

    /// Folds `other` into `self`.  Merging is commutative and associative:
    /// any merge order over any partition of the same samples yields an
    /// identical histogram.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (&bucket, &n) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact smallest sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The exact largest sample, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Arithmetic mean of the samples (0.0 when empty).  The one floating
    /// point convenience; percentiles stay integral.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `numer / denom` (e.g. `(999, 1000)` for p999),
    /// computed entirely in integers: the upper bound of the bucket holding
    /// the sample of rank `ceil(count * numer / denom)`, clamped to the exact
    /// observed maximum.  Returns 0 for an empty histogram or a zero `denom`
    /// (an undefined quantile is reported as "no latency", never a panic or
    /// a divide-by-zero).
    ///
    /// Boundary convention: when the rank lands exactly on a cumulative-count
    /// boundary (the rank-th sample is the *last* sample of its bucket), the
    /// reported value is that bucket's upper bound — never the next bucket's.
    /// In the exact range (< 64) this means e.g. p50 over the 50 uniform
    /// values `1..=50` is exactly 25, not 26.
    ///
    /// # Panics
    ///
    /// Panics if `numer > denom` (a quantile above 1 is a caller bug, unlike
    /// an empty denominator which legitimately arises from "percentile of
    /// zero completed requests").
    #[must_use]
    pub fn value_at_quantile(&self, numer: u64, denom: u64) -> u64 {
        if denom == 0 {
            return 0;
        }
        assert!(numer <= denom, "quantile {numer}/{denom}");
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * numer).div_ceil(denom).max(1);
        let mut seen = 0u64;
        for (&bucket, &n) in &self.buckets {
            seen += n;
            // `>=` keeps the exact-boundary case (`seen == rank`) in the
            // current bucket; `>` would skate past it to the next one.
            if seen >= rank {
                return bucket_upper_bound(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Shorthand for the percentile set the service metrics report:
    /// `(p50, p95, p99, p999)` in sample units.
    #[must_use]
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        (
            self.value_at_quantile(50, 100),
            self.value_at_quantile(95, 100),
            self.value_at_quantile(99, 100),
            self.value_at_quantile(999, 1000),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps into a bucket whose bounds contain it, and bucket
        // indices never decrease as values grow.
        let mut last_bucket = 0;
        for v in 0..10_000u64 {
            let b = bucket_of(v);
            assert!(b >= last_bucket, "bucket regressed at {v}");
            assert!(v <= bucket_upper_bound(b), "{v} above its bucket bound");
            last_bucket = b;
        }
        for shift in 6..40 {
            let v = 1u64 << shift;
            for probe in [v - 1, v, v + 1, v + (v >> 3)] {
                let b = bucket_of(probe);
                assert!(probe <= bucket_upper_bound(b));
                // ~3% relative resolution above the exact range.
                assert!(bucket_upper_bound(b) - probe <= probe / 16 + 1);
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..EXACT_LIMIT {
            h.record(v);
        }
        for v in 0..EXACT_LIMIT {
            assert_eq!(bucket_upper_bound(bucket_of(v)), v);
        }
        assert_eq!(h.count(), EXACT_LIMIT);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), EXACT_LIMIT - 1);
    }

    #[test]
    fn percentiles_of_a_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 100);
        }
        let (p50, p95, p99, p999) = h.percentiles();
        assert!((50_000..=52_000).contains(&p50), "p50 = {p50}");
        assert!((95_000..=99_000).contains(&p95), "p95 = {p95}");
        assert!((99_000..=103_000).contains(&p99), "p99 = {p99}");
        assert!((99_900..=100_000).contains(&p999), "p999 = {p999}");
        assert_eq!(h.value_at_quantile(100, 100), 100_000, "p100 is the max");
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let samples: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 100_000).collect();
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.record(s);
            } else {
                right.record(s);
            }
        }
        let mut merged_lr = left.clone();
        merged_lr.merge(&right);
        let mut merged_rl = right.clone();
        merged_rl.merge(&left);
        assert_eq!(merged_lr, whole);
        assert_eq!(merged_rl, whole, "merge is commutative");
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(123);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.value_at_quantile(99, 100), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = Histogram::new();
        h.record(777_777);
        let (p50, p95, p99, p999) = h.percentiles();
        // One sample: every percentile clamps to the exact max.
        assert_eq!(p50, 777_777);
        assert_eq!(p95, 777_777);
        assert_eq!(p99, 777_777);
        assert_eq!(p999, 777_777);
    }

    #[test]
    fn zero_denominator_is_reported_as_zero() {
        // "p50 of zero completed requests" must not panic or divide by zero.
        let mut h = Histogram::new();
        assert_eq!(h.value_at_quantile(50, 0), 0);
        h.record(42);
        assert_eq!(h.value_at_quantile(50, 0), 0);
        assert_eq!(h.value_at_quantile(0, 0), 0);
    }

    #[test]
    fn exact_value_quantiles_respect_cumulative_boundaries() {
        // 50 uniform values in the exact (< 64) range: every sample has its
        // own bucket, so quantile ranks land exactly on cumulative-count
        // boundaries.  The rank-th sample's own bucket must be reported, not
        // the next bucket up.
        let mut h = Histogram::new();
        for v in 1..=50u64 {
            h.record(v);
        }
        // rank(p50) = ceil(50 * 50 / 100) = 25 → the 25th smallest value.
        assert_eq!(h.value_at_quantile(50, 100), 25);
        // rank(p999) = ceil(50 * 999 / 1000) = 50 → the maximum.
        assert_eq!(h.value_at_quantile(999, 1000), 50);
        // Odd count: rank(p50) = ceil(49 * 50 / 100) = 25 as well.
        let mut odd = Histogram::new();
        for v in 1..=49u64 {
            odd.record(v);
        }
        assert_eq!(odd.value_at_quantile(50, 100), 25);
        assert_eq!(odd.value_at_quantile(999, 1000), 49);
        // Duplicated exact values: boundary lands mid-run of equal samples.
        let mut dup = Histogram::new();
        dup.record_n(10, 5);
        dup.record_n(20, 5);
        assert_eq!(dup.value_at_quantile(50, 100), 10, "rank 5 is still a 10");
        assert_eq!(dup.value_at_quantile(51, 100), 20, "rank 6 is the first 20");
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        a.record_n(5_000, 10);
        let mut b = Histogram::new();
        for _ in 0..10 {
            b.record(5_000);
        }
        assert_eq!(a, b);
    }
}
