//! Strongly-typed identifiers used throughout the MISP workspace.
//!
//! Every architectural entity the paper names — sequencers, MISP processors,
//! OS threads, shreds, processes, memory pages — gets its own identifier
//! newtype so the compiler keeps them from being confused with one another.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Number of low-order bits in a virtual address that index into a page
/// (4 KiB pages, matching IA-32 default page size).
pub const PAGE_SHIFT: u64 = 12;

/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from its raw index.
            #[inline]
            #[must_use]
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// Returns the raw index.
            #[inline]
            #[must_use]
            pub const fn index(self) -> u32 {
                self.0
            }

            /// Returns the raw index as a `usize` for direct slice indexing.
            #[inline]
            #[must_use]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                $name(index)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifies a sequencer (a hardware thread context capable of fetching
    /// and executing one instruction stream).  The paper calls these logical
    /// identifiers *SIDs*; they are the first operand of the `SIGNAL`
    /// instruction.
    SequencerId,
    "SEQ"
);

id_type!(
    /// Identifies a MISP processor: the group of one OS-managed sequencer and
    /// zero or more application-managed sequencers that the OS sees as a
    /// single logical CPU.
    MispProcessorId,
    "MISP"
);

id_type!(
    /// Identifies an OS-visible thread (the entity the OS scheduler manages).
    OsThreadId,
    "THR"
);

id_type!(
    /// Identifies a shred: a MISP-enabled user-level thread that runs on an
    /// application-managed sequencer without OS involvement.
    ShredId,
    "SHR"
);

id_type!(
    /// Identifies an OS process (an address space plus one or more threads).
    ProcessId,
    "PID"
);

id_type!(
    /// Identifies one machine of a simulated fleet: a complete MISP (or SMP)
    /// box with its own clock, event-queue shard, sequencers, memory system
    /// and kernel.  Single-machine simulations are fleets of one.
    MachineId,
    "MACH"
);

id_type!(
    /// Identifies a user-level synchronization object managed by ShredLib
    /// (mutex, semaphore, condition variable, event or barrier).
    LockId,
    "LCK"
);

/// A virtual memory page number within a process address space.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page identifier from its raw page number.
    #[inline]
    #[must_use]
    pub const fn new(page_number: u64) -> Self {
        PageId(page_number)
    }

    /// Returns the raw page number.
    #[inline]
    #[must_use]
    pub const fn number(self) -> u64 {
        self.0
    }

    /// Returns the virtual address of the first byte of this page.
    #[inline]
    #[must_use]
    pub const fn base_addr(self) -> VirtAddr {
        VirtAddr::new(self.0 << PAGE_SHIFT)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PAGE{:#x}", self.0)
    }
}

impl From<u64> for PageId {
    fn from(page_number: u64) -> Self {
        PageId(page_number)
    }
}

/// A virtual address within a process address space.
///
/// # Examples
///
/// ```
/// use misp_types::{VirtAddr, PageId, PAGE_SIZE};
///
/// let addr = VirtAddr::new(3 * PAGE_SIZE + 17);
/// assert_eq!(addr.page(), PageId::new(3));
/// assert_eq!(addr.page_offset(), 17);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from its raw value.
    #[inline]
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw address.
    #[inline]
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the page containing this address.
    #[inline]
    #[must_use]
    pub const fn page(self) -> PageId {
        PageId(self.0 >> PAGE_SHIFT)
    }

    /// Returns the offset of this address within its page.
    #[inline]
    #[must_use]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Returns the address advanced by `bytes`.
    #[inline]
    #[must_use]
    pub const fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let s = SequencerId::new(5);
        assert_eq!(s.index(), 5);
        assert_eq!(s.as_usize(), 5);
        assert_eq!(u32::from(s), 5);
        assert_eq!(SequencerId::from(5u32), s);
        assert_eq!(s.to_string(), "SEQ5");
    }

    #[test]
    fn distinct_display_prefixes() {
        assert_eq!(MispProcessorId::new(1).to_string(), "MISP1");
        assert_eq!(OsThreadId::new(2).to_string(), "THR2");
        assert_eq!(ShredId::new(3).to_string(), "SHR3");
        assert_eq!(ProcessId::new(4).to_string(), "PID4");
        assert_eq!(MachineId::new(5).to_string(), "MACH5");
        assert_eq!(LockId::new(6).to_string(), "LCK6");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(ShredId::new(1) < ShredId::new(2));
        let mut v = vec![
            SequencerId::new(3),
            SequencerId::new(1),
            SequencerId::new(2),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SequencerId::new(1),
                SequencerId::new(2),
                SequencerId::new(3)
            ]
        );
    }

    #[test]
    fn virt_addr_page_math() {
        let addr = VirtAddr::new(5 * PAGE_SIZE + 100);
        assert_eq!(addr.page(), PageId::new(5));
        assert_eq!(addr.page_offset(), 100);
        assert_eq!(addr.offset(PAGE_SIZE).page(), PageId::new(6));
        assert_eq!(PageId::new(5).base_addr(), VirtAddr::new(5 * PAGE_SIZE));
        assert_eq!(addr.to_string(), format!("{:#x}", 5 * PAGE_SIZE + 100));
    }

    #[test]
    fn page_id_display_and_conversion() {
        assert_eq!(PageId::from(16u64).number(), 16);
        assert_eq!(PageId::new(16).to_string(), "PAGE0x10");
    }

    #[test]
    fn serde_transparency() {
        let json = serde_json::to_string(&SequencerId::new(7)).unwrap();
        assert_eq!(json, "7");
        let back: SequencerId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, SequencerId::new(7));
    }
}
