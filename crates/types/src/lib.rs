//! Foundation types shared by every crate in the MISP workspace.
//!
//! The Multiple Instruction Stream Processor (MISP) architecture, as described
//! in the ISCA 2006 paper by Hankins et al., introduces the *sequencer* as a
//! new category of architectural resource and defines a canonical set of
//! instructions for user-level inter-sequencer signaling and asynchronous
//! control transfer.  This crate contains the vocabulary types used throughout
//! the reproduction: strongly-typed identifiers, cycle arithmetic, privilege
//! rings, the architectural cost model, and the common error type.
//!
//! # Examples
//!
//! ```
//! use misp_types::{Cycles, SequencerId, Ring};
//!
//! let start = Cycles::new(1_000);
//! let end = start + Cycles::new(500);
//! assert_eq!(end.as_u64(), 1_500);
//!
//! let oms = SequencerId::new(0);
//! assert_eq!(oms.index(), 0);
//! assert_eq!(Ring::Ring3.is_user(), true);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
mod cost;
mod cycles;
mod error;
mod fnv;
mod fxhash;
mod histogram;
mod ids;
mod ring;
mod rng;

pub use arena::{Arena, ArenaId, ArenaMap};
pub use cost::{CacheCostModel, CostModel, CostModelBuilder, SignalCost};
pub use cycles::{Cycles, Duration};
pub use error::{MispError, Result};
pub use fnv::Fnv64;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use histogram::Histogram;
pub use ids::{
    LockId, MachineId, MispProcessorId, OsThreadId, PageId, ProcessId, SequencerId, ShredId,
    VirtAddr, PAGE_SHIFT, PAGE_SIZE,
};
pub use ring::{Ring, RingTransition};
pub use rng::{det_ln, SplitMix64};
