//! IA-32 privilege rings and ring transitions.
//!
//! The paper's key overhead comes from Ring 3 → Ring 0 transitions on the
//! OS-managed sequencer: every such transition forces all application-managed
//! sequencers in the same MISP processor to suspend until the OMS returns to
//! Ring 3 (Section 2.3 of the paper).

use core::fmt;
use serde::{Deserialize, Serialize};

/// An IA-32 privilege level relevant to MISP.
///
/// The paper only distinguishes the privileged kernel level (Ring 0) and the
/// user level (Ring 3); Rings 1 and 2 are unused by mainstream operating
/// systems and are omitted from the model.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Ring {
    /// Kernel privilege level: OS services, interrupt handlers, page-fault
    /// handling.  Only the OS-managed sequencer may execute at Ring 0.
    Ring0,
    /// User privilege level.  Application-managed sequencers execute only the
    /// Ring 3 subset of the ISA.
    #[default]
    Ring3,
}

impl Ring {
    /// Returns `true` for the user privilege level (Ring 3).
    #[inline]
    #[must_use]
    pub const fn is_user(self) -> bool {
        matches!(self, Ring::Ring3)
    }

    /// Returns `true` for the kernel privilege level (Ring 0).
    #[inline]
    #[must_use]
    pub const fn is_kernel(self) -> bool {
        matches!(self, Ring::Ring0)
    }
}

impl fmt::Display for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ring::Ring0 => write!(f, "ring 0"),
            Ring::Ring3 => write!(f, "ring 3"),
        }
    }
}

/// A privilege-level transition observed on a sequencer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RingTransition {
    /// Entry into the kernel (Ring 3 → Ring 0): a trap, fault or interrupt.
    Enter,
    /// Return to user code (Ring 0 → Ring 3): `IRET`/`SYSEXIT`.
    Exit,
}

impl RingTransition {
    /// The privilege level in effect after the transition completes.
    #[inline]
    #[must_use]
    pub const fn target_ring(self) -> Ring {
        match self {
            RingTransition::Enter => Ring::Ring0,
            RingTransition::Exit => Ring::Ring3,
        }
    }
}

impl fmt::Display for RingTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingTransition::Enter => write!(f, "ring 3 -> ring 0"),
            RingTransition::Exit => write!(f, "ring 0 -> ring 3"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_predicates() {
        assert!(Ring::Ring3.is_user());
        assert!(!Ring::Ring3.is_kernel());
        assert!(Ring::Ring0.is_kernel());
        assert!(!Ring::Ring0.is_user());
        assert_eq!(Ring::default(), Ring::Ring3);
    }

    #[test]
    fn transition_targets() {
        assert_eq!(RingTransition::Enter.target_ring(), Ring::Ring0);
        assert_eq!(RingTransition::Exit.target_ring(), Ring::Ring3);
    }

    #[test]
    fn display() {
        assert_eq!(Ring::Ring0.to_string(), "ring 0");
        assert_eq!(Ring::Ring3.to_string(), "ring 3");
        assert_eq!(RingTransition::Enter.to_string(), "ring 3 -> ring 0");
        assert_eq!(RingTransition::Exit.to_string(), "ring 0 -> ring 3");
    }
}
