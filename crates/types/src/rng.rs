//! Deterministic pseudo-random numbers for scenario generation.
//!
//! The request-serving scenarios need random arrival and service times that
//! are *reproducible down to the bit on every platform*, because the golden
//! sweep documents commit the resulting cycle counts.  Two things follow:
//!
//! * The generator is a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//!   stream — a tiny, well-studied mixer whose output is a pure function of
//!   the 64-bit seed.
//! * Sampling avoids `libm`: [`SplitMix64::next_exp`] uses [`det_ln`], a
//!   hand-rolled natural logarithm built exclusively from IEEE 754
//!   exactly-rounded operations (`+ - * /` and bit manipulation), so the
//!   same seed produces the same `f64` on any conforming platform, unlike
//!   `f64::ln` whose rounding is implementation-defined.

/// A SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use misp_types::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.  Equal seeds produce equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        // The conversion of a < 2^53 integer and the multiplication by a
        // power of two are both exact, so this is bit-deterministic.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An exponentially distributed sample with the given mean, via inverse
    /// transform sampling through the deterministic logarithm [`det_ln`].
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // 1 - u is in (0, 1], so the logarithm is finite and non-positive.
        -det_ln(1.0 - self.next_f64()) * mean
    }

    /// Derives an independent child generator (stream splitting).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// Natural logarithm of a positive finite `f64`, computed only with IEEE 754
/// exactly-rounded operations so the result is bit-identical on every
/// conforming platform.
///
/// The argument is split as `x = m * 2^e` with `m ∈ [1, 2)`; `ln m` comes
/// from the `atanh` series `2(r + r³/3 + r⁵/5 + …)` with `r = (m-1)/(m+1) ∈
/// [0, 1/3)`, summed to well below `f64` precision.  Accuracy is a few ULP —
/// far more than the cycle-rounding downstream needs — and, crucially,
/// *reproducible*, unlike `f64::ln`.
///
/// # Panics
///
/// Panics if `x` is not a positive finite normal number (the scenario
/// generator only feeds it values in `(0, 1]`).
#[must_use]
pub fn det_ln(x: f64) -> f64 {
    assert!(
        x.is_finite() && x >= f64::MIN_POSITIVE,
        "det_ln needs a positive finite normal argument, got {x:e}"
    );
    let bits = x.to_bits();
    let exponent = ((bits >> 52) & 0x7FF) as i64 - 1023;
    // Mantissa with the implicit leading one restored, scaled into [1, 2).
    let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | (1023u64 << 52));
    let r = (m - 1.0) / (m + 1.0);
    let r2 = r * r;
    // r < 1/3 so r² < 1/9: 13 odd terms put the truncation error below
    // 2⁻⁵⁷, under the rounding noise of the summation itself.
    let mut term = r;
    let mut sum = 0.0;
    let mut k = 1u32;
    while k <= 25 {
        sum += term / f64::from(k);
        term *= r2;
        k += 2;
    }
    exponent as f64 * core::f64::consts::LN_2 + 2.0 * sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SplitMix64::new(0xDEAD_BEEF);
        let mut b = SplitMix64::new(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values from the canonical splitmix64.c with seed 0.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut g = SplitMix64::new(42);
        for _ in 0..1000 {
            let u = g.next_f64();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn det_ln_matches_libm_closely() {
        for &x in &[
            1e-12, 1e-6, 0.001, 0.1, 0.25, 0.5, 0.75, 0.999, 1.0, 1.5, 2.0, 10.0, 12345.678,
        ] {
            let got = det_ln(x);
            let want = x.ln();
            assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                "det_ln({x}) = {got}, libm says {want}"
            );
        }
        assert_eq!(det_ln(1.0), 0.0);
    }

    #[test]
    fn exponential_sample_has_roughly_the_right_mean() {
        let mut g = SplitMix64::new(7);
        let n = 20_000;
        let mean = 1000.0;
        let sum: f64 = (0..n).map(|_| g.next_exp(mean)).sum();
        let got = sum / f64::from(n);
        assert!(
            (got - mean).abs() < mean * 0.05,
            "sample mean {got} too far from {mean}"
        );
    }

    #[test]
    fn fork_produces_an_independent_deterministic_child() {
        let mut parent_a = SplitMix64::new(3);
        let mut parent_b = SplitMix64::new(3);
        let mut child_a = parent_a.fork();
        let mut child_b = parent_b.fork();
        assert_eq!(child_a.next_u64(), child_b.next_u64());
        assert_ne!(parent_a.next_u64(), child_a.next_u64());
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn det_ln_rejects_zero() {
        let _ = det_ln(0.0);
    }
}
