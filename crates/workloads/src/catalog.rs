//! The catalog of modeled benchmarks (Figure 4 / Table 1) and ported
//! applications (Table 2).

use crate::{LocalityProfile, PortedApplication, Suite, Workload, WorkloadParams};
use misp_mem::AccessPattern;
use shredlib::compat::LegacyApi;

/// Compact parameter constructor used by the catalog below.
///
/// The calibration logic: the MISP-specific cost of the workload is dominated
/// by proxy execution, roughly `3 x signal + priv ~ 25k cycles` per AMS page
/// fault serialized at the OMS.  Keeping that total under ~1-2% of the
/// parallel phase (`total_work x (1 - serial_fraction) / 8`) — as it is in the
/// paper, where runs last tens of billions of cycles — requires the larger
/// `total_work` values used here.  Simulation cost is unaffected because the
/// engine is event-driven: only the number of *events* matters, not the
/// number of simulated cycles.
#[allow(clippy::too_many_arguments)]
fn params(
    total_work: u64,
    serial_fraction: f64,
    main_pages: u64,
    worker_pages: u64,
    chunks_per_worker: u64,
    main_syscalls: u64,
    worker_syscalls: u64,
    access_pattern: AccessPattern,
    lock_contention: bool,
) -> WorkloadParams {
    WorkloadParams {
        total_work,
        serial_fraction,
        main_pages,
        worker_pages,
        chunks_per_worker,
        main_syscalls,
        worker_syscalls,
        access_pattern,
        lock_contention,
        locality: LocalityProfile::Revisit,
    }
}

const SEQ: AccessPattern = AccessPattern::Sequential;

/// Every workload of the paper's Figure 4 / Table 1 evaluation, in the order
/// the figures present them.
///
/// The parameters are calibrated so that (a) the scalability of each workload
/// on eight contexts falls in the band Figure 4 reports, (b) the mix of
/// serializing events — OMS page faults and syscalls versus AMS (proxy) page
/// faults — follows the shape of Table 1 (e.g. `gauss`, `kmeans` and `svm_c`
/// fault mostly on the OMS during serial initialization, the sparse kernels,
/// `svm_c` and `RayTracer` fault on the AMSs, and the SPEComp applications add
/// large system-call counts on the OMS), and (c) the ratio of serializing
/// events to compute keeps MISP within a few percent of the SMP baseline, as
/// in the paper.
#[must_use]
pub fn all() -> Vec<Workload> {
    let rms = |name, p| Workload::new(name, Suite::Rms, p);
    let spec = |name, p| Workload::new(name, Suite::SpecOmp, p);
    vec![
        rms(
            "ADAt",
            params(1_500_000_000, 0.16, 40, 2, 40, 0, 0, SEQ, false),
        ),
        rms(
            "dense_mmm",
            params(2_500_000_000, 0.012, 30, 16, 60, 0, 0, SEQ, false),
        ),
        rms(
            "dense_mvm",
            params(1_500_000_000, 0.03, 6, 1, 30, 0, 0, SEQ, false),
        ),
        rms(
            "dense_mvm_sym",
            params(1_500_000_000, 0.022, 8, 1, 30, 0, 0, SEQ, false),
        ),
        rms(
            "gauss",
            params(3_000_000_000, 0.07, 400, 1, 50, 2, 0, SEQ, false),
        ),
        rms(
            "kmeans",
            params(2_500_000_000, 0.055, 300, 1, 40, 2, 0, SEQ, true),
        ),
        rms(
            "sparse_mvm",
            params(
                4_000_000_000,
                0.04,
                10,
                26,
                35,
                0,
                0,
                AccessPattern::Shuffled { seed: 11 },
                false,
            ),
        ),
        rms(
            "sparse_mvm_sym",
            params(
                6_000_000_000,
                0.045,
                5,
                40,
                35,
                0,
                0,
                AccessPattern::Shuffled { seed: 12 },
                false,
            ),
        ),
        rms(
            "sparse_mvm_trans",
            params(
                4_000_000_000,
                0.04,
                10,
                25,
                35,
                0,
                0,
                AccessPattern::Strided { stride: 3 },
                false,
            ),
        ),
        rms(
            "svm_c",
            params(
                5_000_000_000,
                0.08,
                300,
                50,
                45,
                2,
                0,
                AccessPattern::Shuffled { seed: 13 },
                false,
            ),
        ),
        rms(
            "RayTracer",
            params(
                6_000_000_000,
                0.012,
                80,
                40,
                30,
                0,
                0,
                AccessPattern::Shuffled { seed: 14 },
                false,
            ),
        ),
        spec(
            "swim",
            params(10_000_000_000, 0.04, 500, 80, 60, 500, 0, SEQ, false),
        ),
        spec(
            "applu",
            params(10_000_000_000, 0.06, 500, 80, 55, 60, 0, SEQ, false),
        ),
        spec(
            "galgel",
            params(8_000_000_000, 0.12, 1200, 60, 50, 20, 0, SEQ, false),
        ),
        spec(
            "equake",
            params(6_000_000_000, 0.07, 400, 50, 45, 350, 0, SEQ, false),
        ),
        spec(
            "art",
            params(8_000_000_000, 0.03, 1100, 70, 45, 160, 4, SEQ, false),
        ),
    ]
}

/// The locality-variant workloads behind the `cache_sensitivity` grid.
///
/// These are not part of the paper's Figure 4/Table 1 catalog ([`all`]) — the
/// flat-cost figures and their goldens are unaffected.  The three variants
/// share the work and per-iteration touch budget so that differences in runs
/// with the cache model enabled are attributable to locality alone:
///
/// * `stream_walk` — streams through a 48-page per-worker set, the
///   cache-hostile regime (capacity misses scale with L2 size).
/// * `blocked_walk` — the same set and touch count, but revisiting a 4-page
///   block, the cache-friendly tiled regime (L1 hits).
/// * `hotset_update` — all workers read/write a shared 8-page hot set, the
///   coherence-bound regime (invalidations; coherence misses across
///   clusters).
#[must_use]
pub fn cache_variants() -> Vec<Workload> {
    let base = |locality, worker_pages| WorkloadParams {
        total_work: 120_000_000,
        serial_fraction: 0.05,
        main_pages: 16,
        worker_pages,
        chunks_per_worker: 80,
        main_syscalls: 0,
        worker_syscalls: 0,
        access_pattern: AccessPattern::Sequential,
        lock_contention: false,
        locality,
    };
    vec![
        Workload::new(
            "stream_walk",
            Suite::Rms,
            base(
                LocalityProfile::Streaming {
                    pages_per_chunk: 24,
                },
                48,
            ),
        ),
        Workload::new(
            "blocked_walk",
            Suite::Rms,
            base(
                LocalityProfile::Blocked {
                    block_pages: 4,
                    touches_per_chunk: 24,
                },
                48,
            ),
        ),
        Workload::new(
            "hotset_update",
            Suite::Rms,
            base(
                LocalityProfile::SharedHotSet {
                    pages: 8,
                    touches_per_chunk: 24,
                },
                16,
            ),
        ),
    ]
}

/// Looks up a workload by name: the Figure 4 catalog first (case-sensitive),
/// then the [`cache_variants`].
#[must_use]
pub fn by_name(name: &str) -> Option<Workload> {
    all()
        .into_iter()
        .chain(cache_variants())
        .find(|w| w.name() == name)
}

/// The applications of Table 2, described by the legacy threading API surface
/// each one uses.  The per-application function lists are reconstructed from
/// the kind of software each row is (a Pthreads analysis tool, a Win32 media
/// encoder, a JVM, …); they drive the compatibility-coverage proxy for the
/// paper's porting-effort numbers.
#[must_use]
pub fn table2_applications() -> Vec<PortedApplication> {
    vec![
        PortedApplication {
            name: "Intel Thread Checker",
            description: "Identifies errors in multithreaded applications",
            api: LegacyApi::Win32,
            functions: vec![
                "CreateThread",
                "WaitForSingleObject",
                "InitializeCriticalSection",
                "EnterCriticalSection",
                "LeaveCriticalSection",
                "TlsAlloc",
                "TlsSetValue",
                "TlsGetValue",
                "SetThreadPriority",
            ],
            paper_days: 5.0,
            structural_changes: false,
        },
        PortedApplication {
            name: "Intel Thread Profiler",
            description: "Provides performance analysis for multithreaded applications",
            api: LegacyApi::Win32,
            functions: vec![
                "CreateThread",
                "WaitForMultipleObjects",
                "CreateEvent",
                "SetEvent",
                "ResetEvent",
                "TlsAlloc",
                "TlsGetValue",
                "SetThreadPriority",
            ],
            paper_days: 5.0,
            structural_changes: false,
        },
        PortedApplication {
            name: "Intel OpenMP Library",
            description: "Intel's implementation of the OpenMP specification",
            api: LegacyApi::OpenMp,
            functions: vec![
                "__kmp_fork_call",
                "__kmp_join_call",
                "omp_get_thread_num",
                "omp_get_num_threads",
                "omp_set_lock",
                "omp_unset_lock",
                "#pragma omp parallel",
                "#pragma omp barrier",
                "#pragma omp critical",
            ],
            paper_days: 5.0,
            structural_changes: false,
        },
        PortedApplication {
            name: "RayTracer",
            description: "Research prototype for studying Ray Tracing algorithms",
            api: LegacyApi::Pthreads,
            functions: vec![
                "pthread_create",
                "pthread_join",
                "pthread_mutex_lock",
                "pthread_mutex_unlock",
                "pthread_barrier_wait",
            ],
            paper_days: 1.0,
            structural_changes: false,
        },
        PortedApplication {
            name: "Open Dynamics Engine",
            description: "Physics modeling engine, multithreaded in-house",
            api: LegacyApi::Win32,
            functions: vec![
                "CreateThread",
                "WaitForSingleObject",
                "EnterCriticalSection",
                "LeaveCriticalSection",
                "Sleep",
                "GetMessage",
            ],
            paper_days: 3.0,
            structural_changes: true,
        },
        PortedApplication {
            name: "Media Encoder",
            description: "Commercial multithreaded MPEG video encoder",
            api: LegacyApi::Win32,
            functions: vec![
                "_beginthreadex",
                "WaitForMultipleObjects",
                "CreateSemaphore",
                "ReleaseSemaphore",
                "CreateEvent",
                "SetEvent",
                "EnterCriticalSection",
                "LeaveCriticalSection",
                "SetThreadPriority",
                "Sleep",
            ],
            paper_days: 13.0,
            structural_changes: false,
        },
        PortedApplication {
            name: "Lame-MT",
            description: "Multithreaded MPEG-1 Layer 3 (MP3) encoder",
            api: LegacyApi::Pthreads,
            functions: vec![
                "pthread_create",
                "pthread_join",
                "pthread_mutex_lock",
                "pthread_mutex_unlock",
                "pthread_cond_wait",
                "pthread_cond_signal",
            ],
            paper_days: 0.5,
            structural_changes: false,
        },
        PortedApplication {
            name: "BEA JRockit",
            description: "High-performance, commercial Java Virtual Machine",
            api: LegacyApi::Win32,
            functions: vec![
                "CreateThread",
                "ExitThread",
                "WaitForSingleObject",
                "WaitForMultipleObjects",
                "CreateEvent",
                "SetEvent",
                "ResetEvent",
                "CreateSemaphore",
                "ReleaseSemaphore",
                "EnterCriticalSection",
                "TryEnterCriticalSection",
                "LeaveCriticalSection",
                "TlsAlloc",
                "TlsSetValue",
                "TlsGetValue",
                "SetThreadPriority",
                "Sleep",
            ],
            paper_days: 15.0,
            structural_changes: false,
        },
        PortedApplication {
            name: "RMS Benchmark Suite",
            description:
                "Multithreaded kernels from emerging Recognition-Mining-Synthesis workloads",
            api: LegacyApi::Pthreads,
            functions: vec![
                "pthread_create",
                "pthread_join",
                "pthread_mutex_lock",
                "pthread_mutex_unlock",
                "pthread_barrier_init",
                "pthread_barrier_wait",
            ],
            paper_days: 0.5,
            structural_changes: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_figure4_workload_list() {
        let names: Vec<&str> = all().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "ADAt",
                "dense_mmm",
                "dense_mvm",
                "dense_mvm_sym",
                "gauss",
                "kmeans",
                "sparse_mvm",
                "sparse_mvm_sym",
                "sparse_mvm_trans",
                "svm_c",
                "RayTracer",
                "swim",
                "applu",
                "galgel",
                "equake",
                "art"
            ]
        );
        assert_eq!(all().len(), 16);
    }

    #[test]
    fn suites_are_split_11_rms_5_specomp() {
        let rms = all().iter().filter(|w| w.suite() == Suite::Rms).count();
        let spec = all().iter().filter(|w| w.suite() == Suite::SpecOmp).count();
        assert_eq!(rms, 11);
        assert_eq!(spec, 5);
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("galgel").is_some());
        assert!(by_name("RayTracer").is_some());
        assert!(by_name("doom3").is_none());
    }

    #[test]
    fn cache_variants_resolve_by_name_but_stay_out_of_the_figure_catalog() {
        let variants = cache_variants();
        assert_eq!(variants.len(), 3);
        for v in &variants {
            assert!(by_name(v.name()).is_some(), "{} resolves", v.name());
            assert!(
                all().iter().all(|w| w.name() != v.name()),
                "{} must not join the Figure 4 catalog",
                v.name()
            );
        }
        // The streaming and blocked variants are a controlled pair: same
        // work, same footprint, same touch budget — only locality differs.
        let stream = by_name("stream_walk").unwrap();
        let blocked = by_name("blocked_walk").unwrap();
        assert_eq!(stream.params().total_work, blocked.params().total_work);
        assert_eq!(stream.params().worker_pages, blocked.params().worker_pages);
        assert_eq!(
            stream.params().chunks_per_worker,
            blocked.params().chunks_per_worker
        );
        assert_ne!(stream.params().locality, blocked.params().locality);
    }

    #[test]
    fn scalability_band_matches_figure4() {
        for w in all() {
            let s8 = w.params().amdahl_speedup(8);
            assert!(
                (3.0..=8.0).contains(&s8),
                "{} has ideal 8-way speedup {s8:.2}, outside Figure 4's range",
                w.name()
            );
        }
    }

    #[test]
    fn specomp_workloads_are_syscall_heavy() {
        for w in all() {
            match w.suite() {
                Suite::SpecOmp => assert!(
                    w.params().main_syscalls >= 20,
                    "{} should model SPEComp's OS interaction",
                    w.name()
                ),
                Suite::Rms => assert!(w.params().main_syscalls <= 10),
            }
        }
    }

    #[test]
    fn proxy_cost_ratio_stays_small() {
        // The MISP-specific cost is dominated by AMS page faults serialized at
        // the OMS (~25k cycles each with the default cost model).  The catalog
        // must keep that under a few percent of the parallel phase, or the
        // Figure 4 parity result cannot hold.
        for w in all() {
            let p = w.params();
            let ams_faults = p.worker_pages * 7; // workers running on the 7 AMSs
            let proxy_cycles = ams_faults * 25_000;
            let parallel_phase = p.parallel_work() / 8;
            let ratio = proxy_cycles as f64 / parallel_phase as f64;
            assert!(
                ratio < 0.04,
                "{}: proxy-execution cost is {:.1}% of the parallel phase",
                w.name(),
                ratio * 100.0
            );
        }
    }

    #[test]
    fn table2_has_all_nine_rows_with_mappable_apis() {
        let apps = table2_applications();
        assert_eq!(apps.len(), 9);
        for app in &apps {
            assert!(
                !app.functions.is_empty(),
                "{} needs an API surface",
                app.name
            );
            let report = shredlib::compat::coverage(app.functions.iter().copied());
            assert!(
                report.mechanical_fraction() > 0.5,
                "{} should be mostly mechanically portable",
                app.name
            );
            assert!(
                report.unmapped.is_empty(),
                "{} uses only known APIs",
                app.name
            );
        }
        // The one structural port in the paper is the Open Dynamics Engine.
        assert_eq!(apps.iter().filter(|a| a.structural_changes).count(), 1);
    }
}
