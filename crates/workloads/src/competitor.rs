//! Single-threaded "competitor" processes for the multi-programming
//! experiments.
//!
//! Figure 7 of the paper loads the system with non-shredded, single-threaded
//! processes alongside the shredded RayTracer and measures how RayTracer's
//! throughput degrades under each MISP MP configuration.  A competitor is a
//! plain compute-bound program run by a [`SingleShredRuntime`]: it never
//! creates shreds, so any AMSs attached to the OMS it runs on sit idle while
//! it holds the CPU — exactly the effect the experiment studies.

use misp_isa::{ProgramBuilder, ProgramLibrary, ProgramRef};
use misp_sim::SingleShredRuntime;
use misp_types::{Cycles, VirtAddr};

/// Base address of competitor working sets (distinct from the shredded
/// application's ranges so page faults are attributed correctly).
const COMPETITOR_BASE: u64 = 0x9000_0000;

/// Builds a single-threaded competitor program of roughly `total_cycles`
/// cycles of compute (with a small working set touched at startup) and returns
/// its program reference.
pub fn competitor_program(
    library: &mut ProgramLibrary,
    index: usize,
    total_cycles: u64,
) -> ProgramRef {
    let pages = 8u64;
    let base = VirtAddr::new(COMPETITOR_BASE + index as u64 * pages * misp_types::PAGE_SIZE);
    let chunks = 100u64;
    let chunk = (total_cycles / chunks).max(1);
    library.insert(
        ProgramBuilder::new(format!("competitor{index}"))
            .touch_pages(base, pages)
            .repeat(chunks, |b| b.compute(Cycles::new(chunk)))
            .build(),
    )
}

/// Builds the runtime for a competitor process created with
/// [`competitor_program`].
#[must_use]
pub fn competitor_runtime(program: ProgramRef) -> SingleShredRuntime {
    SingleShredRuntime::new(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_isa::Op;

    #[test]
    fn program_has_expected_shape() {
        let mut lib = ProgramLibrary::new();
        let r = competitor_program(&mut lib, 0, 1_000_000);
        let program = lib.get(r).unwrap();
        let ops: Vec<Op> = program.iter_flat().collect();
        let compute: u64 = ops
            .iter()
            .filter_map(|o| match o {
                Op::Compute(c) => Some(c.as_u64()),
                _ => None,
            })
            .sum();
        assert!(compute >= 1_000_000);
        let touches = ops.iter().filter(|o| matches!(o, Op::Touch { .. })).count();
        assert_eq!(touches, 8);
    }

    #[test]
    fn distinct_indices_use_distinct_pages() {
        let mut lib = ProgramLibrary::new();
        let a = competitor_program(&mut lib, 0, 1_000);
        let b = competitor_program(&mut lib, 1, 1_000);
        let pages = |r: ProgramRef| -> std::collections::BTreeSet<u64> {
            lib.get(r)
                .unwrap()
                .iter_flat()
                .filter_map(|o| match o {
                    Op::Touch { addr, .. } => Some(addr.page().number()),
                    _ => None,
                })
                .collect()
        };
        assert!(pages(a).is_disjoint(&pages(b)));
    }

    #[test]
    fn runtime_is_constructible() {
        let mut lib = ProgramLibrary::new();
        let r = competitor_program(&mut lib, 0, 10);
        let rt = competitor_runtime(r);
        assert!(rt.shreds().is_empty());
    }
}
