//! Synthetic models of the MISP paper's evaluation workloads.
//!
//! The paper evaluates MISP with compute-bound multithreaded programs from two
//! suites (Section 5.2): kernels from the Recognition-Mining-Synthesis (RMS)
//! suite — dense and sparse linear algebra, Gauss-Seidel, K-Means, an SVM
//! classifier and the RayTracer application — and five SPEComp applications
//! (swim, applu, galgel, equake, art) run through a MISP-enabled OpenMP
//! runtime.
//!
//! We do not have the original binaries or inputs, so each benchmark is
//! modeled as a *calibrated synthetic shred program*: an OpenMP-style
//! fork/join structure whose serial fraction, per-worker compute, working-set
//! footprint (compulsory page faults), system-call profile and memory access
//! pattern are chosen so that the workload exercises the same architectural
//! code paths with the same event *shape* the paper reports in Table 1 (scaled
//! down so a simulation completes in milliseconds rather than minutes; see
//! EXPERIMENTS.md for the scaling discussion).
//!
//! Beyond the fixed-size catalog, the [`scenario`] module provides open-loop
//! request-serving scenarios — seeded arrival streams served by a shred pool
//! with per-request latency measurement — and [`runner::Run`] is the unified
//! builder that executes either kind of work on any machine.
//!
//! # Examples
//!
//! ```
//! use misp_workloads::{catalog, runner::{Machine, Run}};
//! use misp_core::MispTopology;
//! use misp_sim::SimConfig;
//!
//! let workload = catalog::by_name("dense_mvm").unwrap();
//! let report = Run::workload(&workload)
//!     .machine(Machine::misp(MispTopology::uniprocessor(3).unwrap()))
//!     .config(SimConfig::default())
//!     .workers(4)
//!     .execute()
//!     .unwrap();
//! assert!(report.total_cycles.as_u64() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod competitor;
pub mod runner;
pub mod scenario;

mod params;
mod workload;

pub use params::{LocalityProfile, Suite, WorkloadParams};
pub use runner::{Machine, Run, RunOptions};
pub use scenario::{ArrivalModel, FleetStreams, RequestStream, Scenario};
pub use workload::{PortedApplication, Workload};
