//! Workload parameterization.

use misp_mem::AccessPattern;
use serde::{Deserialize, Serialize};

/// The benchmark suite a workload belongs to (the grouping used by Table 1 and
/// Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// Recognition-Mining-Synthesis kernels and the RayTracer application.
    Rms,
    /// SPEComp applications run through the OpenMP runtime.
    SpecOmp,
}

impl Suite {
    /// Human-readable suite name as used in the paper's tables.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Suite::Rms => "RMS",
            Suite::SpecOmp => "SPEComp",
        }
    }
}

/// How a worker shred revisits memory inside its parallel loop — the knob
/// that makes the cache hierarchy (`misp-cache`) distinguishable.
///
/// The first touch of every working-set page is governed by
/// [`AccessPattern`]; `LocalityProfile` governs the *steady-state* accesses
/// each loop iteration performs afterwards.  With the cache model disabled
/// (the default) the profiles differ only in their TLB/page behaviour; with
/// it enabled they separate into distinct miss regimes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocalityProfile {
    /// The original calibration behaviour: revisit one already-resident page
    /// per iteration.  This is the default and is what every paper workload
    /// uses, keeping their committed goldens byte-identical.
    #[default]
    Revisit,
    /// Stream through the worker's whole working set, `pages_per_chunk`
    /// pages per iteration, never reusing a line before the set wraps —
    /// the cache-hostile regime.
    Streaming {
        /// Pages touched per loop iteration.
        pages_per_chunk: u64,
    },
    /// Revisit a small block of `block_pages` pages `touches_per_chunk`
    /// times per iteration — the cache-friendly blocked/tiled regime.
    Blocked {
        /// Size of the reused block, in pages.
        block_pages: u64,
        /// Accesses per loop iteration.
        touches_per_chunk: u64,
    },
    /// All workers read *and write* a shared hot set of `pages` pages every
    /// iteration — the coherence-bound regime (invalidations, coherence
    /// misses).  Every fourth access is a store.
    SharedHotSet {
        /// Size of the shared hot set, in pages.
        pages: u64,
        /// Accesses per loop iteration.
        touches_per_chunk: u64,
    },
}

/// The calibration parameters of one synthetic workload.
///
/// All quantities are already scaled down from the original benchmarks (by
/// roughly two orders of magnitude in run time) so that a full Figure 4 sweep
/// simulates in seconds; the *ratios* between parameters — serial fraction,
/// faults per unit of compute, syscall rate — are what carry over from the
/// paper's Table 1 event profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Total compute work in cycles (serial + parallel portions together).
    pub total_work: u64,
    /// Fraction of `total_work` executed serially by the main shred before the
    /// parallel region (this is what bounds scalability, Amdahl-style).
    pub serial_fraction: f64,
    /// Pages the main shred touches during the serial region (these become
    /// OMS-local page faults).
    pub main_pages: u64,
    /// Pages each worker shred touches first (these become AMS page faults —
    /// proxy executions — when the worker runs on an AMS).
    pub worker_pages: u64,
    /// Number of loop iterations each worker's work is divided into.
    pub chunks_per_worker: u64,
    /// System calls issued by the main shred (OMS syscalls in Table 1).
    pub main_syscalls: u64,
    /// System calls issued by each worker shred (AMS syscalls in Table 1; zero
    /// for every paper workload except art).
    pub worker_syscalls: u64,
    /// The order in which working-set pages are first touched.
    pub access_pattern: AccessPattern,
    /// Whether workers contend on a shared mutex-protected accumulator each
    /// iteration (models reduction-style kernels).
    pub lock_contention: bool,
    /// The steady-state memory-locality regime of the parallel loop.
    pub locality: LocalityProfile,
}

impl WorkloadParams {
    /// Compute cycles executed serially by the main shred.
    #[must_use]
    pub fn serial_work(&self) -> u64 {
        (self.total_work as f64 * self.serial_fraction) as u64
    }

    /// Compute cycles available to the parallel region (split across workers).
    #[must_use]
    pub fn parallel_work(&self) -> u64 {
        self.total_work - self.serial_work()
    }

    /// The ideal Amdahl speedup of this workload on `n` contexts, ignoring all
    /// architectural overheads — useful as an upper bound in tests.
    #[must_use]
    pub fn amdahl_speedup(&self, n: usize) -> f64 {
        let s = self.serial_fraction;
        1.0 / (s + (1.0 - s) / n as f64)
    }
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            total_work: 20_000_000,
            serial_fraction: 0.05,
            main_pages: 16,
            worker_pages: 8,
            chunks_per_worker: 20,
            main_syscalls: 0,
            worker_syscalls: 0,
            access_pattern: AccessPattern::Sequential,
            lock_contention: false,
            locality: LocalityProfile::Revisit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_labels() {
        assert_eq!(Suite::Rms.label(), "RMS");
        assert_eq!(Suite::SpecOmp.label(), "SPEComp");
    }

    #[test]
    fn work_split_is_consistent() {
        let p = WorkloadParams {
            total_work: 1_000_000,
            serial_fraction: 0.25,
            ..WorkloadParams::default()
        };
        assert_eq!(p.serial_work(), 250_000);
        assert_eq!(p.parallel_work(), 750_000);
        assert_eq!(p.serial_work() + p.parallel_work(), p.total_work);
    }

    #[test]
    fn amdahl_speedup_bounds() {
        let p = WorkloadParams {
            serial_fraction: 0.1,
            ..WorkloadParams::default()
        };
        let s8 = p.amdahl_speedup(8);
        assert!(
            s8 > 4.0 && s8 < 5.0,
            "10% serial on 8 contexts is ~4.7x, got {s8}"
        );
        assert!((p.amdahl_speedup(1) - 1.0).abs() < 1e-9);
        let perfectly_parallel = WorkloadParams {
            serial_fraction: 0.0,
            ..WorkloadParams::default()
        };
        assert!((perfectly_parallel.amdahl_speedup(8) - 8.0).abs() < 1e-9);
    }
}
