//! Helpers that run a workload on the MISP machine, the SMP baseline, or a
//! single sequencer.

use crate::Workload;
use misp_core::{MispMachine, MispTopology};
use misp_isa::ProgramLibrary;
use misp_sim::{SimConfig, SimReport};
use misp_smp::SmpMachine;
use misp_types::Result;

/// Runs `workload` on a MISP machine with the given topology.
///
/// The shredded application gets one OS thread per MISP processor (as in the
/// paper's MP experiments) and `workers` worker shreds drawn from the shared
/// work queue.
///
/// # Errors
///
/// Propagates simulation errors (budget exhaustion, deadlock).
pub fn run_on_misp(
    workload: &Workload,
    topology: &MispTopology,
    config: SimConfig,
    workers: usize,
) -> Result<SimReport> {
    let mut library = ProgramLibrary::new();
    let scheduler = workload.build(&mut library, workers);
    let mut machine = MispMachine::new(topology.clone(), config, library);
    let pid = machine.add_process(workload.name(), Box::new(scheduler), Some(0));
    for proc_idx in 1..topology.processors().len() {
        machine.add_thread(pid, Some(proc_idx));
    }
    machine.run()
}

/// Runs `workload` on a MISP machine with the page pre-touch optimization of
/// Section 5.3 enabled (the main shred probes every worker page during the
/// serial region).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_on_misp_with_pretouch(
    workload: &Workload,
    topology: &MispTopology,
    config: SimConfig,
    workers: usize,
) -> Result<SimReport> {
    let mut library = ProgramLibrary::new();
    let scheduler = workload.build_with_pretouch(&mut library, workers);
    let mut machine = MispMachine::new(topology.clone(), config, library);
    let pid = machine.add_process(workload.name(), Box::new(scheduler), Some(0));
    for proc_idx in 1..topology.processors().len() {
        machine.add_thread(pid, Some(proc_idx));
    }
    machine.run()
}

/// Runs `workload` on the SMP baseline with `cores` cores.  The application
/// gets one OS thread per core, mirroring how an OpenMP runtime would span an
/// SMP machine.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_on_smp(
    workload: &Workload,
    cores: usize,
    config: SimConfig,
    workers: usize,
) -> Result<SimReport> {
    let mut library = ProgramLibrary::new();
    let scheduler = workload.build(&mut library, workers);
    let mut machine = SmpMachine::new(cores, config, library);
    let pid = machine.add_process(workload.name(), Box::new(scheduler), Some(0));
    for core in 1..cores {
        machine.add_thread(pid, Some(core));
    }
    machine.run()
}

/// Runs `workload` on a single sequencer (the "1P" baseline Figure 4 divides
/// by).  The same `workers`-way shredded program is used; everything simply
/// time-multiplexes on one sequencer.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_serial(workload: &Workload, config: SimConfig, workers: usize) -> Result<SimReport> {
    run_on_misp(
        workload,
        &MispTopology::uniprocessor(0).expect("single-sequencer topology is valid"),
        config,
        workers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use misp_os::TimerConfig;

    fn quick_config() -> SimConfig {
        SimConfig {
            timer: TimerConfig::new(misp_types::Cycles::new(3_000_000), 10),
            ..SimConfig::default()
        }
    }

    #[test]
    fn dense_mvm_speeds_up_on_misp_and_smp() {
        let w = catalog::by_name("dense_mvm").unwrap();
        let serial = run_serial(&w, quick_config(), 8).unwrap();
        let misp = run_on_misp(
            &w,
            &MispTopology::uniprocessor(7).unwrap(),
            quick_config(),
            8,
        )
        .unwrap();
        let smp = run_on_smp(&w, 8, quick_config(), 8).unwrap();
        let misp_speedup = serial.total_cycles.as_f64() / misp.total_cycles.as_f64();
        let smp_speedup = serial.total_cycles.as_f64() / smp.total_cycles.as_f64();
        assert!(misp_speedup > 4.5, "MISP speedup {misp_speedup:.2}");
        assert!(smp_speedup > 4.5, "SMP speedup {smp_speedup:.2}");
        let relative = (misp_speedup - smp_speedup).abs() / smp_speedup;
        assert!(
            relative < 0.10,
            "MISP and SMP should be within a few percent, got {relative:.3}"
        );
    }

    #[test]
    fn worker_page_faults_become_proxy_events_on_misp() {
        let w = catalog::by_name("sparse_mvm_sym").unwrap();
        let report = run_on_misp(
            &w,
            &MispTopology::uniprocessor(7).unwrap(),
            quick_config(),
            8,
        )
        .unwrap();
        assert!(
            report.stats.ams_events.page_faults > 0,
            "workers on AMSs must fault via proxy execution"
        );
        assert_eq!(report.stats.ams_events.syscalls, 0);
        assert!(report.stats.oms_events.page_faults > 0);
        // On the SMP baseline the same workload has no proxy executions.
        let smp = run_on_smp(&w, 8, quick_config(), 8).unwrap();
        assert_eq!(smp.stats.proxy_executions, 0);
    }

    #[test]
    fn pretouch_eliminates_ams_page_faults() {
        let w = catalog::by_name("sparse_mvm").unwrap();
        let base = run_on_misp(
            &w,
            &MispTopology::uniprocessor(7).unwrap(),
            quick_config(),
            8,
        )
        .unwrap();
        let pretouch = run_on_misp_with_pretouch(
            &w,
            &MispTopology::uniprocessor(7).unwrap(),
            quick_config(),
            8,
        )
        .unwrap();
        assert!(base.stats.ams_events.page_faults > 0);
        assert_eq!(
            pretouch.stats.ams_events.page_faults, 0,
            "pre-touching moves every fault into the serial region"
        );
        assert!(
            pretouch.stats.oms_events.page_faults > base.stats.oms_events.page_faults,
            "the faults move to the OMS rather than disappearing"
        );
    }
}
