//! The unified run API: one builder that executes catalog workloads and
//! open-loop scenarios on the MISP machine, the SMP baseline, or a single
//! sequencer.
//!
//! # Examples
//!
//! ```
//! use misp_workloads::{catalog, runner::{Machine, Run}};
//! use misp_core::MispTopology;
//!
//! let w = catalog::by_name("dense_mvm").unwrap();
//! let report = Run::workload(&w)
//!     .machine(Machine::misp(MispTopology::uniprocessor(7).unwrap()))
//!     .workers(8)
//!     .execute()
//!     .unwrap();
//! assert!(report.total_cycles.as_u64() > 0);
//! ```

use crate::{competitor, scenario::Scenario, Workload};
use misp_core::{FleetTopology, MispMachine, MispTopology, RingPolicy};
use misp_isa::ProgramLibrary;
use misp_sim::{FleetEngine, FleetReport, SimConfig, SimReport};
use misp_smp::SmpMachine;
use misp_types::{MispError, Result};

/// Options that select the non-default variants of a workload run: the page
/// pre-touch optimization, the ring-transition policy ablation, and the
/// multi-programming load of the paper's Figure 7.
///
/// The default options reproduce a plain dedicated-machine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Enable the Section 5.3 page pre-touch optimization (the main shred
    /// probes every worker page during the serial region).  Ignored for
    /// scenario runs, which have no pre-touchable worker partitions.
    pub pretouch: bool,
    /// Override the MISP ring-transition policy (ignored on SMP).
    pub ring_policy: Option<RingPolicy>,
    /// Number of single-threaded competitor processes loaded alongside the
    /// measured application.  When non-zero, only the application process is
    /// measured, as in Figure 7.
    pub competitors: usize,
    /// Compute length of each competitor process, in cycles.  Competitors
    /// must outlast the measured application.
    pub competitor_cycles: u64,
    /// Restrict the application's OS threads to MISP processors that have
    /// AMSs, leaving plain single-sequencer CPUs to the OS (the Figure 7
    /// spanning rule, applied at every load including zero).  The default
    /// spans every processor, as the plain MP runs do.
    pub ams_span_only: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            pretouch: false,
            ring_policy: None,
            competitors: 0,
            competitor_cycles: 12_000_000_000,
            ams_span_only: false,
        }
    }
}

/// The machine a [`Run`] executes on.
#[derive(Debug, Clone, PartialEq)]
pub enum Machine {
    /// A MISP machine with the given topology.
    Misp(MispTopology),
    /// The SMP baseline with this many cores.
    Smp {
        /// Number of cores.
        cores: usize,
    },
    /// A single MISP sequencer (the "1P" baseline Figure 4 divides by).
    Serial,
}

impl Machine {
    /// A MISP machine (convenience constructor mirroring the variants).
    #[must_use]
    pub fn misp(topology: MispTopology) -> Self {
        Machine::Misp(topology)
    }

    /// The SMP baseline with `cores` cores.
    #[must_use]
    pub fn smp(cores: usize) -> Self {
        Machine::Smp { cores }
    }
}

/// What a [`Run`] executes: a catalog workload or an open-loop scenario.
#[derive(Debug, Clone)]
enum Source<'a> {
    Workload(&'a Workload),
    Scenario(&'a Scenario),
}

/// A single simulation run, assembled with a builder.
///
/// Start from [`Run::workload`] or [`Run::scenario`], chain the optional
/// pieces — [`machine`](Run::machine), [`config`](Run::config),
/// [`workers`](Run::workers), [`options`](Run::options),
/// [`seed`](Run::seed) — and call [`execute`](Run::execute).
///
/// Defaults: a [`Machine::Serial`] run of 8 workers with
/// [`SimConfig::default`], default [`RunOptions`], and seed 0.
///
/// The shredded application gets one OS thread per MISP processor (or SMP
/// core), as in the paper's MP experiments.  With
/// [`RunOptions::ams_span_only`] the application instead spans only the
/// processors that have AMSs, leaving plain single-sequencer CPUs (the
/// uneven Figure 7 configurations) to the OS for competitor processes.
#[derive(Debug, Clone)]
pub struct Run<'a> {
    source: Source<'a>,
    machine: Machine,
    config: SimConfig,
    workers: usize,
    options: RunOptions,
    seed: u64,
}

impl<'a> Run<'a> {
    /// Starts a run of a catalog workload.
    #[must_use]
    pub fn workload(workload: &'a Workload) -> Self {
        Run {
            source: Source::Workload(workload),
            machine: Machine::Serial,
            config: SimConfig::default(),
            workers: 8,
            options: RunOptions::default(),
            seed: 0,
        }
    }

    /// Starts a run of an open-loop request-serving scenario.  The seed (see
    /// [`Run::seed`]) selects the recorded customer stream; replaying the
    /// same seed against different machines gives paired comparisons.
    #[must_use]
    pub fn scenario(scenario: &'a Scenario) -> Self {
        Run {
            source: Source::Scenario(scenario),
            machine: Machine::Serial,
            config: SimConfig::default(),
            workers: 8,
            options: RunOptions::default(),
            seed: 0,
        }
    }

    /// Selects the machine (default: [`Machine::Serial`]).
    #[must_use]
    pub fn machine(mut self, machine: Machine) -> Self {
        self.machine = machine;
        self
    }

    /// Shorthand for `.machine(Machine::Misp(topology))`.
    #[must_use]
    pub fn topology(self, topology: MispTopology) -> Self {
        self.machine(Machine::Misp(topology))
    }

    /// Sets the simulation configuration (default: [`SimConfig::default`]).
    #[must_use]
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the number of worker shreds of a workload run (default: 8).
    /// Scenario runs size themselves from the recorded stream instead.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the run options (default: [`RunOptions::default`]).
    #[must_use]
    pub fn options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the stream seed of a scenario run (default: 0).  Ignored for
    /// workload runs, which are fully deterministic without one.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the programs and the scheduler, assembles the machine, and
    /// runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors (budget exhaustion, deadlock).
    pub fn execute(self) -> Result<SimReport> {
        let mut library = ProgramLibrary::new();
        let (name, scheduler) = match self.source {
            Source::Workload(w) => {
                let scheduler = if self.options.pretouch {
                    w.build_with_pretouch(&mut library, self.workers)
                } else {
                    w.build(&mut library, self.workers)
                };
                (w.name(), scheduler)
            }
            Source::Scenario(s) => (s.name(), s.build(&mut library, self.seed)),
        };
        let competitor_programs: Vec<_> = (0..self.options.competitors)
            .map(|i| {
                competitor::competitor_program(&mut library, i, self.options.competitor_cycles)
            })
            .collect();

        match self.machine {
            Machine::Misp(ref topology) => {
                let mut machine = MispMachine::new(topology.clone(), self.config, library);
                if let Some(policy) = self.options.ring_policy {
                    machine.engine_mut().platform_mut().set_policy(policy);
                }
                let pid = machine.add_process(name, Box::new(scheduler), Some(0));
                for proc_idx in 1..topology.processors().len() {
                    if !self.options.ams_span_only
                        || !topology.processors()[proc_idx].ams().is_empty()
                    {
                        machine.add_thread(pid, Some(proc_idx));
                    }
                }
                for program in competitor_programs {
                    machine.add_process(
                        "competitor",
                        Box::new(competitor::competitor_runtime(program)),
                        None,
                    );
                }
                if self.options.competitors > 0 {
                    machine.set_measured(vec![pid]);
                }
                machine.run()
            }
            Machine::Smp { cores } => {
                let mut machine = SmpMachine::new(cores, self.config, library);
                let pid = machine.add_process(name, Box::new(scheduler), Some(0));
                for core in 1..cores {
                    machine.add_thread(pid, Some(core));
                }
                for program in competitor_programs {
                    machine.add_process(
                        "competitor",
                        Box::new(competitor::competitor_runtime(program)),
                        None,
                    );
                }
                if self.options.competitors > 0 {
                    machine.set_measured(vec![pid]);
                }
                machine.run()
            }
            Machine::Serial => {
                let topology =
                    MispTopology::uniprocessor(0).expect("single-sequencer topology is valid");
                Run {
                    machine: Machine::Misp(topology),
                    ..self
                }
                .execute()
            }
        }
    }

    /// Runs the scenario against a whole fleet: the central customer stream
    /// is recorded at the fleet's aggregate arrival rate, dispatched across
    /// `fleet.machines()` identical copies of the selected machine by the
    /// topology's load-balancer policy, and the machines are co-simulated
    /// under the conservative synchronizer with the topology's network
    /// latency as lookahead.
    ///
    /// Each machine runs its own generator replaying its slice of the
    /// stream (machine-local arrivals include the dispatch network hop), so
    /// per-machine service statistics and the fleet aggregate both come out
    /// of one deterministic co-simulation.
    ///
    /// # Errors
    ///
    /// [`MispError::InvalidConfiguration`] if the run's source is a catalog
    /// workload rather than a scenario, or if competitor processes were
    /// requested (fleet machines serve only their request stream).
    /// Propagates simulation errors (budget exhaustion, deadlock).
    pub fn execute_fleet(self, fleet: &FleetTopology) -> Result<FleetReport> {
        let scenario = match self.source {
            Source::Scenario(s) => s,
            Source::Workload(_) => {
                return Err(MispError::InvalidConfiguration(
                    "fleet runs serve request scenarios; catalog workloads run on one machine"
                        .to_string(),
                ));
            }
        };
        if self.options.competitors > 0 {
            return Err(MispError::InvalidConfiguration(
                "competitor processes are not supported on fleet runs".to_string(),
            ));
        }
        let streams = scenario.fleet_streams(self.seed, fleet);

        match self.machine {
            Machine::Misp(ref topology) => {
                let mut engine = FleetEngine::new(fleet.network_latency());
                for stream in &streams.per_machine {
                    let mut library = ProgramLibrary::new();
                    let scheduler = scenario.build_from_stream(&mut library, stream);
                    let mut machine = MispMachine::new(topology.clone(), self.config, library);
                    if let Some(policy) = self.options.ring_policy {
                        machine.engine_mut().platform_mut().set_policy(policy);
                    }
                    let pid = machine.add_process(scenario.name(), Box::new(scheduler), Some(0));
                    for proc_idx in 1..topology.processors().len() {
                        if !self.options.ams_span_only
                            || !topology.processors()[proc_idx].ams().is_empty()
                        {
                            machine.add_thread(pid, Some(proc_idx));
                        }
                    }
                    engine.add_machine(machine.into_sim_machine());
                }
                engine.run_fleet()
            }
            Machine::Smp { cores } => {
                let mut engine = FleetEngine::new(fleet.network_latency());
                for stream in &streams.per_machine {
                    let mut library = ProgramLibrary::new();
                    let scheduler = scenario.build_from_stream(&mut library, stream);
                    let mut machine = SmpMachine::new(cores, self.config, library);
                    let pid = machine.add_process(scenario.name(), Box::new(scheduler), Some(0));
                    for core in 1..cores {
                        machine.add_thread(pid, Some(core));
                    }
                    engine.add_machine(machine.into_sim_machine());
                }
                engine.run_fleet()
            }
            Machine::Serial => {
                let topology =
                    MispTopology::uniprocessor(0).expect("single-sequencer topology is valid");
                Run {
                    machine: Machine::Misp(topology),
                    ..self
                }
                .execute_fleet(fleet)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{catalog, scenario};
    use misp_os::TimerConfig;

    fn quick_config() -> SimConfig {
        SimConfig {
            timer: TimerConfig::new(misp_types::Cycles::new(3_000_000), 10),
            ..SimConfig::default()
        }
    }

    fn misp8() -> Machine {
        Machine::misp(MispTopology::uniprocessor(7).unwrap())
    }

    #[test]
    fn dense_mvm_speeds_up_on_misp_and_smp() {
        let w = catalog::by_name("dense_mvm").unwrap();
        let serial = Run::workload(&w).config(quick_config()).execute().unwrap();
        let misp = Run::workload(&w)
            .machine(misp8())
            .config(quick_config())
            .execute()
            .unwrap();
        let smp = Run::workload(&w)
            .machine(Machine::smp(8))
            .config(quick_config())
            .execute()
            .unwrap();
        let misp_speedup = serial.total_cycles.as_f64() / misp.total_cycles.as_f64();
        let smp_speedup = serial.total_cycles.as_f64() / smp.total_cycles.as_f64();
        assert!(misp_speedup > 4.5, "MISP speedup {misp_speedup:.2}");
        assert!(smp_speedup > 4.5, "SMP speedup {smp_speedup:.2}");
        let relative = (misp_speedup - smp_speedup).abs() / smp_speedup;
        assert!(
            relative < 0.10,
            "MISP and SMP should be within a few percent, got {relative:.3}"
        );
    }

    #[test]
    fn worker_page_faults_become_proxy_events_on_misp() {
        let w = catalog::by_name("sparse_mvm_sym").unwrap();
        let report = Run::workload(&w)
            .machine(misp8())
            .config(quick_config())
            .execute()
            .unwrap();
        assert!(
            report.stats.ams_events.page_faults > 0,
            "workers on AMSs must fault via proxy execution"
        );
        assert_eq!(report.stats.ams_events.syscalls, 0);
        assert!(report.stats.oms_events.page_faults > 0);
        // On the SMP baseline the same workload has no proxy executions.
        let smp = Run::workload(&w)
            .machine(Machine::smp(8))
            .config(quick_config())
            .execute()
            .unwrap();
        assert_eq!(smp.stats.proxy_executions, 0);
    }

    #[test]
    fn competitors_slow_the_measured_application() {
        let w = catalog::by_name("dense_mvm").unwrap();
        let topo = MispTopology::config_uneven(3, 4);
        let loaded = Run::workload(&w)
            .topology(topo.clone())
            .config(quick_config())
            .options(RunOptions {
                competitors: 2,
                competitor_cycles: 4_000_000_000,
                ams_span_only: true,
                ..RunOptions::default()
            })
            .execute()
            .unwrap();
        let unloaded = Run::workload(&w)
            .topology(topo)
            .config(quick_config())
            .options(RunOptions {
                ams_span_only: true,
                ..RunOptions::default()
            })
            .execute()
            .unwrap();
        assert!(
            loaded.total_cycles >= unloaded.total_cycles,
            "competitor load must not speed the application up"
        );
        // Only the application is measured, so exactly one completion is
        // reported even though three processes ran.
        assert_eq!(loaded.completions.len(), 1);
    }

    #[test]
    fn ring_policy_option_matches_direct_platform_configuration() {
        let w = catalog::by_name("kmeans").unwrap();
        let via_options = Run::workload(&w)
            .machine(misp8())
            .config(quick_config())
            .options(RunOptions {
                ring_policy: Some(misp_core::RingPolicy::Speculative),
                ..RunOptions::default()
            })
            .execute()
            .unwrap();
        let baseline = Run::workload(&w)
            .machine(misp8())
            .config(quick_config())
            .execute()
            .unwrap();
        assert!(via_options.total_cycles <= baseline.total_cycles);
    }

    #[test]
    fn pretouch_eliminates_ams_page_faults() {
        let w = catalog::by_name("sparse_mvm").unwrap();
        let base = Run::workload(&w)
            .machine(misp8())
            .config(quick_config())
            .execute()
            .unwrap();
        let pretouch = Run::workload(&w)
            .machine(misp8())
            .config(quick_config())
            .options(RunOptions {
                pretouch: true,
                ..RunOptions::default()
            })
            .execute()
            .unwrap();
        assert!(base.stats.ams_events.page_faults > 0);
        assert_eq!(
            pretouch.stats.ams_events.page_faults, 0,
            "pre-touching moves every fault into the serial region"
        );
        assert!(
            pretouch.stats.oms_events.page_faults > base.stats.oms_events.page_faults,
            "the faults move to the OMS rather than disappearing"
        );
    }

    #[test]
    fn scenario_run_reports_service_statistics() {
        let s = scenario::by_name("poisson").unwrap().with_requests(50);
        let report = Run::scenario(&s)
            .machine(misp8())
            .config(quick_config())
            .seed(42)
            .execute()
            .unwrap();
        let service = report.stats.service.as_ref().expect("service stats");
        assert_eq!(service.admitted, 50);
        assert_eq!(service.completed, 50);
        assert!(service.latency.value_at_quantile(50, 100) > 0);
    }

    #[test]
    fn crn_pairing_gives_identical_streams_across_machines() {
        // The same seed must replay the identical customer stream on MISP
        // and SMP: identical admission counts and identical scheduled
        // arrivals (the paired-comparison property).
        let s = scenario::by_name("bursty").unwrap().with_requests(40);
        let misp = Run::scenario(&s)
            .machine(misp8())
            .config(quick_config())
            .seed(7)
            .execute()
            .unwrap();
        let smp = Run::scenario(&s)
            .machine(Machine::smp(8))
            .config(quick_config())
            .seed(7)
            .execute()
            .unwrap();
        let a = misp.stats.service.as_ref().unwrap();
        let b = smp.stats.service.as_ref().unwrap();
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.dropped, b.dropped);
    }

    #[test]
    fn fleet_run_serves_every_dispatched_request() {
        let s = scenario::by_name("poisson").unwrap().with_requests(60);
        let fleet =
            misp_core::FleetTopology::new(4, misp_core::LoadBalancerPolicy::RoundRobin).unwrap();
        let report = Run::scenario(&s)
            .machine(misp8())
            .config(quick_config())
            .seed(11)
            .execute_fleet(&fleet)
            .unwrap();
        assert_eq!(report.reports.len(), 4);
        let aggregate = report.aggregate_service().expect("service stats");
        assert_eq!(aggregate.admitted, 60);
        assert_eq!(aggregate.completed, 60);
        assert_eq!(aggregate.dropped, 0);
        for machine in &report.reports {
            let service = machine.stats.service.as_ref().expect("per-machine stats");
            assert_eq!(service.admitted, 15, "round robin splits 60 four ways");
        }
    }

    #[test]
    fn fleet_runs_are_deterministic_and_paired_across_machine_types() {
        let s = scenario::by_name("bursty").unwrap().with_requests(40);
        let fleet =
            misp_core::FleetTopology::new(2, misp_core::LoadBalancerPolicy::Random).unwrap();
        let misp_a = Run::scenario(&s)
            .machine(misp8())
            .config(quick_config())
            .seed(3)
            .execute_fleet(&fleet)
            .unwrap();
        let misp_b = Run::scenario(&s)
            .machine(misp8())
            .config(quick_config())
            .seed(3)
            .execute_fleet(&fleet)
            .unwrap();
        assert_eq!(misp_a.fleet_digest, misp_b.fleet_digest);
        // Common random numbers: the SMP fleet under the same seed serves
        // the identical dispatch, machine by machine.
        let smp = Run::scenario(&s)
            .machine(Machine::smp(8))
            .config(quick_config())
            .seed(3)
            .execute_fleet(&fleet)
            .unwrap();
        for (m, (a, b)) in misp_a.reports.iter().zip(&smp.reports).enumerate() {
            let a = a.stats.service.as_ref().unwrap();
            let b = b.stats.service.as_ref().unwrap();
            assert_eq!(a.admitted, b.admitted, "machine {m}");
            assert_eq!(a.dropped, b.dropped, "machine {m}");
        }
    }

    #[test]
    fn fleet_rejects_workload_sources_and_competitors() {
        let w = catalog::by_name("dense_mvm").unwrap();
        let fleet =
            misp_core::FleetTopology::new(2, misp_core::LoadBalancerPolicy::RoundRobin).unwrap();
        assert!(Run::workload(&w).execute_fleet(&fleet).is_err());
        let s = scenario::by_name("poisson").unwrap().with_requests(10);
        let denied = Run::scenario(&s)
            .options(RunOptions {
                competitors: 1,
                ..RunOptions::default()
            })
            .execute_fleet(&fleet);
        assert!(denied.is_err());
    }
}
