//! Helpers that run a workload on the MISP machine, the SMP baseline, or a
//! single sequencer.

use crate::{competitor, Workload};
use misp_core::{MispMachine, MispTopology, RingPolicy};
use misp_isa::ProgramLibrary;
use misp_sim::{SimConfig, SimReport};
use misp_smp::SmpMachine;
use misp_types::Result;

/// Options that select the non-default variants of a workload run: the page
/// pre-touch optimization, the ring-transition policy ablation, and the
/// multi-programming load of the paper's Figure 7.
///
/// The default options reproduce a plain dedicated-machine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Enable the Section 5.3 page pre-touch optimization (the main shred
    /// probes every worker page during the serial region).
    pub pretouch: bool,
    /// Override the MISP ring-transition policy (ignored on SMP).
    pub ring_policy: Option<RingPolicy>,
    /// Number of single-threaded competitor processes loaded alongside the
    /// measured application.  When non-zero, only the application process is
    /// measured, as in Figure 7.
    pub competitors: usize,
    /// Compute length of each competitor process, in cycles.  Competitors
    /// must outlast the measured application.
    pub competitor_cycles: u64,
    /// Restrict the application's OS threads to MISP processors that have
    /// AMSs, leaving plain single-sequencer CPUs to the OS (the Figure 7
    /// spanning rule, applied at every load including zero).  The default
    /// spans every processor, as the plain MP runs do.
    pub ams_span_only: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            pretouch: false,
            ring_policy: None,
            competitors: 0,
            competitor_cycles: 12_000_000_000,
            ams_span_only: false,
        }
    }
}

impl RunOptions {
    fn build_scheduler(
        &self,
        workload: &Workload,
        library: &mut ProgramLibrary,
        workers: usize,
    ) -> shredlib::GangScheduler {
        if self.pretouch {
            workload.build_with_pretouch(library, workers)
        } else {
            workload.build(library, workers)
        }
    }
}

/// Runs `workload` on a MISP machine with the given topology and options.
///
/// The shredded application gets one OS thread per MISP processor (as in the
/// paper's MP experiments) and `workers` worker shreds drawn from the shared
/// work queue.  With `options.ams_span_only` the application instead spans
/// only the processors that have AMSs, leaving plain single-sequencer CPUs
/// (the uneven Figure 7 configurations) to the OS for competitor processes.
///
/// # Errors
///
/// Propagates simulation errors (budget exhaustion, deadlock).
pub fn run_on_misp_with(
    workload: &Workload,
    topology: &MispTopology,
    config: SimConfig,
    workers: usize,
    options: &RunOptions,
) -> Result<SimReport> {
    let mut library = ProgramLibrary::new();
    let scheduler = options.build_scheduler(workload, &mut library, workers);
    let competitor_programs: Vec<_> = (0..options.competitors)
        .map(|i| competitor::competitor_program(&mut library, i, options.competitor_cycles))
        .collect();

    let mut machine = MispMachine::new(topology.clone(), config, library);
    if let Some(policy) = options.ring_policy {
        machine.engine_mut().platform_mut().set_policy(policy);
    }
    let pid = machine.add_process(workload.name(), Box::new(scheduler), Some(0));
    for proc_idx in 1..topology.processors().len() {
        if !options.ams_span_only || !topology.processors()[proc_idx].ams().is_empty() {
            machine.add_thread(pid, Some(proc_idx));
        }
    }
    for program in competitor_programs {
        machine.add_process(
            "competitor",
            Box::new(competitor::competitor_runtime(program)),
            None,
        );
    }
    if options.competitors > 0 {
        machine.set_measured(vec![pid]);
    }
    machine.run()
}

/// Runs `workload` on a MISP machine with the given topology and default
/// options.
///
/// # Errors
///
/// Propagates simulation errors (budget exhaustion, deadlock).
pub fn run_on_misp(
    workload: &Workload,
    topology: &MispTopology,
    config: SimConfig,
    workers: usize,
) -> Result<SimReport> {
    run_on_misp_with(workload, topology, config, workers, &RunOptions::default())
}

/// Runs `workload` on a MISP machine with the page pre-touch optimization of
/// Section 5.3 enabled (the main shred probes every worker page during the
/// serial region).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_on_misp_with_pretouch(
    workload: &Workload,
    topology: &MispTopology,
    config: SimConfig,
    workers: usize,
) -> Result<SimReport> {
    let options = RunOptions {
        pretouch: true,
        ..RunOptions::default()
    };
    run_on_misp_with(workload, topology, config, workers, &options)
}

/// Runs `workload` on the SMP baseline with `cores` cores and the given
/// options.  The application gets one OS thread per core, mirroring how an
/// OpenMP runtime would span an SMP machine.  The ring-policy option is
/// ignored (SMP has no AMSs to suspend).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_on_smp_with(
    workload: &Workload,
    cores: usize,
    config: SimConfig,
    workers: usize,
    options: &RunOptions,
) -> Result<SimReport> {
    let mut library = ProgramLibrary::new();
    let scheduler = options.build_scheduler(workload, &mut library, workers);
    let competitor_programs: Vec<_> = (0..options.competitors)
        .map(|i| competitor::competitor_program(&mut library, i, options.competitor_cycles))
        .collect();

    let mut machine = SmpMachine::new(cores, config, library);
    let pid = machine.add_process(workload.name(), Box::new(scheduler), Some(0));
    for core in 1..cores {
        machine.add_thread(pid, Some(core));
    }
    for program in competitor_programs {
        machine.add_process(
            "competitor",
            Box::new(competitor::competitor_runtime(program)),
            None,
        );
    }
    if options.competitors > 0 {
        machine.set_measured(vec![pid]);
    }
    machine.run()
}

/// Runs `workload` on the SMP baseline with `cores` cores and default
/// options.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_on_smp(
    workload: &Workload,
    cores: usize,
    config: SimConfig,
    workers: usize,
) -> Result<SimReport> {
    run_on_smp_with(workload, cores, config, workers, &RunOptions::default())
}

/// Runs `workload` on a single sequencer (the "1P" baseline Figure 4 divides
/// by).  The same `workers`-way shredded program is used; everything simply
/// time-multiplexes on one sequencer.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_serial(workload: &Workload, config: SimConfig, workers: usize) -> Result<SimReport> {
    run_on_misp(
        workload,
        &MispTopology::uniprocessor(0).expect("single-sequencer topology is valid"),
        config,
        workers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use misp_os::TimerConfig;

    fn quick_config() -> SimConfig {
        SimConfig {
            timer: TimerConfig::new(misp_types::Cycles::new(3_000_000), 10),
            ..SimConfig::default()
        }
    }

    #[test]
    fn dense_mvm_speeds_up_on_misp_and_smp() {
        let w = catalog::by_name("dense_mvm").unwrap();
        let serial = run_serial(&w, quick_config(), 8).unwrap();
        let misp = run_on_misp(
            &w,
            &MispTopology::uniprocessor(7).unwrap(),
            quick_config(),
            8,
        )
        .unwrap();
        let smp = run_on_smp(&w, 8, quick_config(), 8).unwrap();
        let misp_speedup = serial.total_cycles.as_f64() / misp.total_cycles.as_f64();
        let smp_speedup = serial.total_cycles.as_f64() / smp.total_cycles.as_f64();
        assert!(misp_speedup > 4.5, "MISP speedup {misp_speedup:.2}");
        assert!(smp_speedup > 4.5, "SMP speedup {smp_speedup:.2}");
        let relative = (misp_speedup - smp_speedup).abs() / smp_speedup;
        assert!(
            relative < 0.10,
            "MISP and SMP should be within a few percent, got {relative:.3}"
        );
    }

    #[test]
    fn worker_page_faults_become_proxy_events_on_misp() {
        let w = catalog::by_name("sparse_mvm_sym").unwrap();
        let report = run_on_misp(
            &w,
            &MispTopology::uniprocessor(7).unwrap(),
            quick_config(),
            8,
        )
        .unwrap();
        assert!(
            report.stats.ams_events.page_faults > 0,
            "workers on AMSs must fault via proxy execution"
        );
        assert_eq!(report.stats.ams_events.syscalls, 0);
        assert!(report.stats.oms_events.page_faults > 0);
        // On the SMP baseline the same workload has no proxy executions.
        let smp = run_on_smp(&w, 8, quick_config(), 8).unwrap();
        assert_eq!(smp.stats.proxy_executions, 0);
    }

    #[test]
    fn competitors_slow_the_measured_application() {
        let w = catalog::by_name("dense_mvm").unwrap();
        let topo = MispTopology::config_uneven(3, 4);
        let options = RunOptions {
            competitors: 2,
            competitor_cycles: 4_000_000_000,
            ams_span_only: true,
            ..RunOptions::default()
        };
        let loaded = run_on_misp_with(&w, &topo, quick_config(), 8, &options).unwrap();
        let unloaded = run_on_misp_with(
            &w,
            &topo,
            quick_config(),
            8,
            &RunOptions {
                ams_span_only: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert!(
            loaded.total_cycles >= unloaded.total_cycles,
            "competitor load must not speed the application up"
        );
        // Only the application is measured, so exactly one completion is
        // reported even though three processes ran.
        assert_eq!(loaded.completions.len(), 1);
    }

    #[test]
    fn ring_policy_option_matches_direct_platform_configuration() {
        let w = catalog::by_name("kmeans").unwrap();
        let topo = MispTopology::uniprocessor(7).unwrap();
        let options = RunOptions {
            ring_policy: Some(misp_core::RingPolicy::Speculative),
            ..RunOptions::default()
        };
        let via_options = run_on_misp_with(&w, &topo, quick_config(), 8, &options).unwrap();
        let baseline = run_on_misp(&w, &topo, quick_config(), 8).unwrap();
        assert!(via_options.total_cycles <= baseline.total_cycles);
    }

    #[test]
    fn pretouch_eliminates_ams_page_faults() {
        let w = catalog::by_name("sparse_mvm").unwrap();
        let base = run_on_misp(
            &w,
            &MispTopology::uniprocessor(7).unwrap(),
            quick_config(),
            8,
        )
        .unwrap();
        let pretouch = run_on_misp_with_pretouch(
            &w,
            &MispTopology::uniprocessor(7).unwrap(),
            quick_config(),
            8,
        )
        .unwrap();
        assert!(base.stats.ams_events.page_faults > 0);
        assert_eq!(
            pretouch.stats.ams_events.page_faults, 0,
            "pre-touching moves every fault into the serial region"
        );
        assert!(
            pretouch.stats.oms_events.page_faults > base.stats.oms_events.page_faults,
            "the faults move to the OMS rather than disappearing"
        );
    }
}
