//! Open-loop request-serving scenarios.
//!
//! A [`Scenario`] describes a stream of service requests arriving at a
//! machine: an arrival process ([`ArrivalModel`]), an offered load relative
//! to the service pool's capacity, and the shape of each request (service
//! time, session working-set touches, occasional system calls).  From a seed
//! it records a [`RequestStream`] — the explicit list of arrival cycles and
//! per-request service times — and builds the generator + request shred
//! programs plus a [`GangScheduler`] carrying the matching
//! [`shredlib::ServiceModel`].
//!
//! # Common random numbers
//!
//! The stream is a pure function of `(scenario parameters, seed)`.  Two
//! properties make comparisons paired and low-variance:
//!
//! * The *same* recorded stream replays against MISP, SMP and serial
//!   machines, so a MISP-vs-SMP latency delta is measured on identical
//!   customers.
//! * The arrival rate is always computed from the scenario's **nominal**
//!   pool width, so overriding the dispatch gate with
//!   [`Scenario::with_pool_width`] (an M/M/1-vs-M/M/k experiment) replays
//!   the identical stream against a differently shaped pool.
//!
//! # Examples
//!
//! ```
//! use misp_workloads::scenario;
//!
//! let s = scenario::by_name("poisson").unwrap();
//! let a = s.stream(42);
//! let b = s.stream(42);
//! assert_eq!(a, b, "the stream is a pure function of (params, seed)");
//! assert_eq!(a.arrivals.len(), s.requests());
//! ```

use misp_core::{FleetTopology, LoadBalancerPolicy};
use misp_isa::{Op, ProgramBuilder, ProgramLibrary, SyscallKind};
use misp_types::{Cycles, SplitMix64, VirtAddr, PAGE_SIZE};
use shredlib::{GangScheduler, SchedulingPolicy, ServiceModel};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Base virtual address of the session working set shared by all requests.
const SESSION_BASE: u64 = 0xA000_0000;
/// Floor on generated inter-arrival gaps and service times, in cycles.
const MIN_CYCLES: u64 = 1_000;
/// Cap on generated gaps/service times (an exponential tail can in principle
/// produce astronomically large samples; this keeps runs bounded without
/// affecting any realistic percentile).
const MAX_CYCLES: u64 = 1 << 40;

/// The inter-arrival process of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrivalModel {
    /// Memoryless arrivals: i.i.d. exponential gaps (the M of M/M/k).
    Poisson,
    /// A two-state Markov-modulated Poisson process: the stream alternates
    /// between a quiet state (gaps stretched 3x) and a burst state (gaps
    /// compressed to 0.4x), switching state with probability 1/8 at each
    /// arrival.  The long-run rate matches the nominal offered load.
    Bursty,
    /// A piecewise-constant daily profile: the request sequence is divided
    /// into six equal phases whose rates are 0.5x, 0.8x, 1.3x, 1.8x, 1.2x
    /// and 0.6x of nominal — a trough-to-peak curve compressed into one run.
    Diurnal,
}

impl ArrivalModel {
    /// The model's name as used in grid labels and the CLI.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalModel::Poisson => "poisson",
            ArrivalModel::Bursty => "bursty",
            ArrivalModel::Diurnal => "diurnal",
        }
    }
}

/// Rate multipliers of the six [`ArrivalModel::Diurnal`] phases.
const DIURNAL_RATES: [f64; 6] = [0.5, 0.8, 1.3, 1.8, 1.2, 0.6];
/// Gap stretch of the bursty model's quiet state.
const BURSTY_SLOW: f64 = 3.0;
/// Gap compression of the bursty model's burst state.
const BURSTY_FAST: f64 = 0.4;

/// A recorded customer stream: the common-random-numbers object that replays
/// unchanged against every machine and pool shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestStream {
    /// Scheduled arrival cycle of each request, strictly increasing.
    pub arrivals: Vec<Cycles>,
    /// Service demand of each request, in compute cycles.
    pub service: Vec<Cycles>,
}

/// An open-loop request-serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: &'static str,
    model: ArrivalModel,
    requests: usize,
    mean_service: u64,
    offered_load_pct: u32,
    nominal_pool: usize,
    pool_override: Option<usize>,
    queue_bound: Option<usize>,
    session_pages: u64,
    touches_per_request: u64,
    syscall_every: u64,
}

impl Scenario {
    /// Creates a scenario with the catalog defaults: 1000 requests with a
    /// mean service demand of 1.2M cycles against a pool of seven servers at
    /// 60% offered load, touching a 64-page session working set.
    #[must_use]
    pub fn new(name: &'static str, model: ArrivalModel) -> Self {
        Scenario {
            name,
            model,
            requests: 1000,
            mean_service: 1_200_000,
            offered_load_pct: 60,
            nominal_pool: 7,
            pool_override: None,
            queue_bound: None,
            session_pages: 64,
            touches_per_request: 2,
            syscall_every: 16,
        }
    }

    /// The scenario's catalog name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The arrival model.
    #[must_use]
    pub fn model(&self) -> ArrivalModel {
        self.model
    }

    /// Number of requests in the stream.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.requests
    }

    /// The offered load as a percentage of pool capacity.
    #[must_use]
    pub fn offered_load_pct(&self) -> u32 {
        self.offered_load_pct
    }

    /// The pool width the dispatch gate enforces: the override if set,
    /// otherwise the nominal width.
    #[must_use]
    pub fn pool_width(&self) -> usize {
        self.pool_override.unwrap_or(self.nominal_pool)
    }

    /// Overrides the offered load (percent of pool capacity).
    ///
    /// # Panics
    ///
    /// Panics if `pct` is zero.
    #[must_use]
    pub fn with_offered_load(mut self, pct: u32) -> Self {
        assert!(pct > 0, "offered load must be positive");
        self.offered_load_pct = pct;
        self
    }

    /// Overrides the number of requests in the stream.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is zero.
    #[must_use]
    pub fn with_requests(mut self, requests: usize) -> Self {
        assert!(requests > 0, "a scenario needs at least one request");
        self.requests = requests;
        self
    }

    /// Overrides the *dispatch gate* pool width without touching the arrival
    /// rate, which stays derived from the nominal width — this is the
    /// common-random-numbers handle for M/M/1-vs-M/M/k comparisons.
    #[must_use]
    pub fn with_pool_width(mut self, width: usize) -> Self {
        assert!(width > 0, "a service pool needs at least one slot");
        self.pool_override = Some(width);
        self
    }

    /// Bounds outstanding requests; arrivals beyond the bound are dropped.
    #[must_use]
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        assert!(bound > 0, "a queue bound of zero drops everything");
        self.queue_bound = Some(bound);
        self
    }

    /// Mean inter-arrival gap, in cycles, at the nominal offered load:
    /// `offered load = (arrival rate x mean service) / nominal pool width`,
    /// solved for the gap.
    fn mean_gap(&self) -> f64 {
        self.mean_service as f64 * 100.0
            / (f64::from(self.offered_load_pct) * self.nominal_pool as f64)
    }

    /// Records the customer stream for `seed`.  Pure: equal parameters and
    /// seeds give bit-identical streams on every platform.
    #[must_use]
    pub fn stream(&self, seed: u64) -> RequestStream {
        self.stream_scaled(seed, 1)
    }

    /// Records the stream for `seed` with the arrival rate scaled up by
    /// `machines`: the central stream a fleet's load balancer partitions.
    /// The effective nominal pool is `nominal_pool x machines`, so each
    /// machine of a balanced fleet sees roughly the scenario's offered load.
    fn stream_scaled(&self, seed: u64, machines: usize) -> RequestStream {
        let mut rng = SplitMix64::new(seed);
        let mut arrival_rng = rng.fork();
        let mut service_rng = rng.fork();
        // The bursty state machine draws from its own stream so that adding
        // state transitions never perturbs the gap samples.
        let mut state_rng = rng.fork();
        // Division by 1.0 is exact, so a fleet of one replays the
        // single-machine stream bit for bit.
        let mean_gap = self.mean_gap() / machines as f64;

        let mut arrivals = Vec::with_capacity(self.requests);
        let mut service = Vec::with_capacity(self.requests);
        let mut at = 0u64;
        let mut burst = false;
        for i in 0..self.requests {
            let mean = match self.model {
                ArrivalModel::Poisson => mean_gap,
                ArrivalModel::Bursty => {
                    if state_rng.next_f64() < 0.125 {
                        burst = !burst;
                    }
                    mean_gap * if burst { BURSTY_FAST } else { BURSTY_SLOW }
                }
                ArrivalModel::Diurnal => {
                    let phase = (i * DIURNAL_RATES.len()) / self.requests;
                    mean_gap / DIURNAL_RATES[phase]
                }
            };
            let gap = clamp_cycles(arrival_rng.next_exp(mean));
            at += gap;
            arrivals.push(Cycles::new(at));
            service.push(Cycles::new(clamp_cycles(
                service_rng.next_exp(self.mean_service as f64),
            )));
        }
        RequestStream { arrivals, service }
    }

    /// Builds the generator and request shred programs for the stream
    /// recorded from `seed` into `library` and returns the gang scheduler
    /// with the matching service model attached.
    ///
    /// The generator is the main shred: it permanently occupies one
    /// sequencer (hence the nominal pool of seven on an eight-sequencer
    /// machine), alternating `compute(gap)` with `shred_create(request)`.
    /// Each request touches its slice of the session working set, computes
    /// its recorded service demand, and every `syscall_every`-th request
    /// issues an I/O system call.
    #[must_use]
    pub fn build(&self, library: &mut ProgramLibrary, seed: u64) -> GangScheduler {
        let stream = self.stream(seed);
        self.build_from_stream(library, &stream)
    }

    /// Like [`Scenario::build`], but replays an already-recorded stream
    /// (the common-random-numbers path).
    #[must_use]
    pub fn build_from_stream(
        &self,
        library: &mut ProgramLibrary,
        stream: &RequestStream,
    ) -> GangScheduler {
        assert_eq!(stream.arrivals.len(), stream.service.len());
        let mut request_refs = Vec::with_capacity(stream.service.len());
        for (i, &demand) in stream.service.iter().enumerate() {
            let mut b = ProgramBuilder::new(format!("{}-req{}", self.name, i));
            for t in 0..self.touches_per_request {
                let page = (i as u64 * self.touches_per_request + t) % self.session_pages;
                b = b.load(VirtAddr::new(SESSION_BASE + page * PAGE_SIZE));
            }
            b = b.compute(demand);
            if self.syscall_every > 0 && (i as u64).is_multiple_of(self.syscall_every) {
                b = b.syscall(SyscallKind::Io);
            }
            request_refs.push(library.insert(b.build()));
        }

        let mut generator =
            ProgramBuilder::new(format!("{}-generator", self.name)).op(Op::RegisterHandler);
        let mut prev = 0u64;
        for (i, &arrival) in stream.arrivals.iter().enumerate() {
            let gap = arrival.as_u64() - prev;
            prev = arrival.as_u64();
            generator = generator
                .compute(Cycles::new(gap))
                .shred_create(request_refs[i]);
        }
        let generator_ref = library.insert(generator.build());

        let mut model =
            ServiceModel::new(stream.arrivals.clone()).with_pool_width(self.pool_width());
        if let Some(bound) = self.queue_bound {
            model = model.with_queue_bound(bound);
        }
        GangScheduler::builder()
            .policy(SchedulingPolicy::Fifo)
            .main_program(generator_ref)
            .service(model)
            .build()
    }

    /// Records the central customer stream for `seed` at the fleet's
    /// aggregate arrival rate and dispatches it across the fleet's machines
    /// with the topology's load-balancer policy.
    ///
    /// Machine-local arrival cycles include the dispatch hop: each request
    /// reaches its machine one network latency after its central arrival.
    /// Dispatch decisions draw from a dedicated fork of the seed chain, so
    /// the recorded arrivals and service demands are identical across
    /// policies and machine types (common random numbers); only the
    /// partition changes.
    #[must_use]
    pub fn fleet_streams(&self, seed: u64, fleet: &FleetTopology) -> FleetStreams {
        let machines = fleet.machines();
        let central = self.stream_scaled(seed, machines);
        let latency = fleet.network_latency();
        // The balancer draws from the fourth fork of the seed chain — after
        // the arrival, service and burst-state forks — so dispatch never
        // perturbs the stream itself.
        let mut root = SplitMix64::new(seed);
        let _arrivals = root.fork();
        let _service = root.fork();
        let _state = root.fork();
        let mut lb_rng = root.fork();

        // LeastOutstanding's analytic model: the modeled completion (arrival
        // + network hop + service demand) of every request dispatched to
        // each machine so far, kept as min-heaps so expired entries pop off
        // the top.
        let mut outstanding: Vec<BinaryHeap<Reverse<u64>>> = vec![BinaryHeap::new(); machines];
        let mut assignments = Vec::with_capacity(central.arrivals.len());
        for (i, (&at, &demand)) in central.arrivals.iter().zip(&central.service).enumerate() {
            let m = match fleet.policy() {
                LoadBalancerPolicy::RoundRobin => i % machines,
                LoadBalancerPolicy::Random => (lb_rng.next_u64() % machines as u64) as usize,
                LoadBalancerPolicy::LeastOutstanding => {
                    for heap in &mut outstanding {
                        while heap.peek().is_some_and(|&Reverse(c)| c <= at.as_u64()) {
                            heap.pop();
                        }
                    }
                    (0..machines)
                        .min_by_key(|&m| (outstanding[m].len(), m))
                        .expect("fleet has at least one machine")
                }
            };
            outstanding[m].push(Reverse(at.as_u64() + latency.as_u64() + demand.as_u64()));
            assignments.push(m);
        }

        let mut per_machine = vec![
            RequestStream {
                arrivals: Vec::new(),
                service: Vec::new(),
            };
            machines
        ];
        for (i, &m) in assignments.iter().enumerate() {
            per_machine[m]
                .arrivals
                .push(Cycles::new(central.arrivals[i].as_u64() + latency.as_u64()));
            per_machine[m].service.push(central.service[i]);
        }
        FleetStreams {
            per_machine,
            assignments,
        }
    }
}

/// The load balancer's output: one replayable stream per fleet machine plus
/// the dispatch decisions that produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStreams {
    /// The recorded stream each machine replays.  Arrival cycles already
    /// include the dispatch network hop.
    pub per_machine: Vec<RequestStream>,
    /// The machine index each central request was dispatched to, in central
    /// arrival order.
    pub assignments: Vec<usize>,
}

impl FleetStreams {
    /// Number of requests dispatched to each machine.
    #[must_use]
    pub fn dispatch_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.per_machine.len()];
        for &m in &self.assignments {
            counts[m] += 1;
        }
        counts
    }
}

/// Rounds a generated duration to whole cycles within the sane range.
fn clamp_cycles(x: f64) -> u64 {
    (x as u64).clamp(MIN_CYCLES, MAX_CYCLES)
}

/// The named scenarios of the catalog, one per arrival model.
#[must_use]
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario::new("poisson", ArrivalModel::Poisson),
        Scenario::new("bursty", ArrivalModel::Bursty),
        Scenario::new("diurnal", ArrivalModel::Diurnal),
    ]
}

/// Looks a scenario up by catalog name.
#[must_use]
pub fn by_name(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_per_seed() {
        for s in all() {
            assert_eq!(s.stream(7), s.stream(7), "{}", s.name());
            assert_ne!(s.stream(7), s.stream(8), "{}", s.name());
        }
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        for s in all() {
            let stream = s.stream(1);
            for w in stream.arrivals.windows(2) {
                assert!(w[0] < w[1], "{}", s.name());
            }
        }
    }

    #[test]
    fn pool_override_preserves_the_stream() {
        let base = by_name("poisson").unwrap();
        let narrow = base.clone().with_pool_width(1);
        assert_eq!(
            base.stream(3),
            narrow.stream(3),
            "common random numbers: the gate must not perturb arrivals"
        );
        assert_eq!(narrow.pool_width(), 1);
        assert_eq!(base.pool_width(), 7);
    }

    #[test]
    fn offered_load_scales_the_mean_gap() {
        let light = by_name("poisson").unwrap().with_offered_load(30);
        let heavy = by_name("poisson").unwrap().with_offered_load(90);
        let light_span = light.stream(5).arrivals.last().unwrap().as_u64();
        let heavy_span = heavy.stream(5).arrivals.last().unwrap().as_u64();
        // Tripling the load should roughly third the span of the schedule.
        let ratio = light_span as f64 / heavy_span as f64;
        assert!(
            (2.0..4.5).contains(&ratio),
            "expected ~3x span ratio, got {ratio:.2}"
        );
    }

    #[test]
    fn diurnal_peak_phase_is_denser_than_the_trough() {
        let s = by_name("diurnal").unwrap();
        let stream = s.stream(11);
        let n = stream.arrivals.len();
        let span = |phase: usize| {
            let lo = phase * n / 6;
            let hi = (phase + 1) * n / 6 - 1;
            stream.arrivals[hi].as_u64() - stream.arrivals[lo].as_u64()
        };
        // Phase 3 runs at 1.8x nominal, phase 0 at 0.5x: the peak phase's
        // arrivals must be packed into a much shorter span.
        assert!(
            span(3) * 2 < span(0),
            "peak span {} vs trough span {}",
            span(3),
            span(0)
        );
    }

    #[test]
    fn build_emits_one_program_per_request_plus_generator() {
        let s = by_name("poisson").unwrap().with_requests(10);
        let mut lib = ProgramLibrary::new();
        let sched = s.build(&mut lib, 9);
        assert_eq!(lib.len(), 11, "10 requests + 1 generator");
        assert_eq!(sched.policy(), SchedulingPolicy::Fifo);
    }

    #[test]
    fn fleet_of_one_replays_the_single_machine_stream_shifted_by_the_hop() {
        let s = by_name("poisson").unwrap().with_requests(50);
        let fleet =
            FleetTopology::with_network_latency(1, LoadBalancerPolicy::RoundRobin, Cycles::new(1))
                .unwrap();
        let single = s.stream(13);
        let streams = s.fleet_streams(13, &fleet);
        assert_eq!(streams.per_machine.len(), 1);
        assert_eq!(streams.per_machine[0].service, single.service);
        let shifted: Vec<Cycles> = single
            .arrivals
            .iter()
            .map(|a| Cycles::new(a.as_u64() + 1))
            .collect();
        assert_eq!(streams.per_machine[0].arrivals, shifted);
    }

    #[test]
    fn every_policy_partitions_the_same_central_stream() {
        let s = by_name("bursty").unwrap().with_requests(120);
        for policy in LoadBalancerPolicy::all() {
            let fleet = FleetTopology::new(4, policy).unwrap();
            let streams = s.fleet_streams(21, &fleet);
            assert_eq!(streams.assignments.len(), 120, "{}", policy.label());
            assert_eq!(streams.dispatch_counts().iter().sum::<usize>(), 120);
            // Reassembling the partition in central order recovers one
            // stream: every request went somewhere exactly once.
            let total: usize = streams.per_machine.iter().map(|m| m.arrivals.len()).sum();
            assert_eq!(total, 120, "{}", policy.label());
            // Per-machine arrivals stay strictly increasing (subsequence of
            // a strictly increasing stream plus a constant hop).
            for m in &streams.per_machine {
                for w in m.arrivals.windows(2) {
                    assert!(w[0] < w[1], "{}", policy.label());
                }
            }
        }
    }

    #[test]
    fn round_robin_dispatch_is_even_and_least_outstanding_never_starves() {
        let s = by_name("poisson").unwrap().with_requests(100);
        let rr = s.fleet_streams(
            5,
            &FleetTopology::new(4, LoadBalancerPolicy::RoundRobin).unwrap(),
        );
        let counts = rr.dispatch_counts();
        assert!(counts.iter().all(|&c| c == 25), "{counts:?}");
        let least = s.fleet_streams(
            5,
            &FleetTopology::new(4, LoadBalancerPolicy::LeastOutstanding).unwrap(),
        );
        assert!(
            least.dispatch_counts().iter().all(|&c| c > 0),
            "the analytic balancer must spread load across all machines"
        );
    }

    #[test]
    fn fleet_dispatch_is_a_pure_function_of_seed_and_shape() {
        let s = by_name("diurnal").unwrap().with_requests(80);
        let fleet = FleetTopology::new(3, LoadBalancerPolicy::Random).unwrap();
        assert_eq!(s.fleet_streams(9, &fleet), s.fleet_streams(9, &fleet));
        assert_ne!(
            s.fleet_streams(9, &fleet).assignments,
            s.fleet_streams(10, &fleet).assignments
        );
    }

    #[test]
    fn catalog_lookup() {
        assert_eq!(all().len(), 3);
        assert!(by_name("bursty").is_some());
        assert!(by_name("nonexistent").is_none());
        for s in all() {
            assert_eq!(s.model().label(), s.name());
        }
    }
}
