//! Workload definitions and shred-program generation.

use crate::{LocalityProfile, Suite, WorkloadParams};
use misp_isa::{Op, ProgramBuilder, ProgramLibrary, SyscallKind};
use misp_mem::WorkingSet;
use misp_types::{Cycles, LockId, VirtAddr, PAGE_SIZE};
use shredlib::{compat::LegacyApi, GangScheduler, SchedulingPolicy};

/// Base virtual address of the main shred's (serial-region) working set.
const MAIN_BASE: u64 = 0x1000_0000;
/// Base virtual address of the first worker's working set; workers are laid
/// out contiguously above this.
const WORKER_BASE: u64 = 0x4000_0000;
/// Base virtual address of the hot set shared by every worker of a
/// [`LocalityProfile::SharedHotSet`] workload.
const SHARED_BASE: u64 = 0x8000_0000;
/// The barrier every shred (workers + main) waits at to end the run.
const FINISH_BARRIER: LockId = LockId::new(0);
/// The mutex used by workloads with a contended shared accumulator.
const REDUCTION_MUTEX: LockId = LockId::new(1);

/// One synthetic benchmark: a named, calibrated fork/join workload.
#[derive(Debug, Clone)]
pub struct Workload {
    name: &'static str,
    suite: Suite,
    params: WorkloadParams,
}

impl Workload {
    /// Creates a workload from its calibration parameters.
    #[must_use]
    pub fn new(name: &'static str, suite: Suite, params: WorkloadParams) -> Self {
        Workload {
            name,
            suite,
            params,
        }
    }

    /// The benchmark name as used in the paper's figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The suite the benchmark belongs to.
    #[must_use]
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// The calibration parameters.
    #[must_use]
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Builds the workload's shred programs into `library` and returns the
    /// gang scheduler configured to run them with `workers` worker shreds.
    ///
    /// The structure follows the paper's OpenMP-style execution model: the
    /// main shred registers the proxy handler, touches its serial working
    /// set, performs the serial computation, creates the worker shreds and
    /// finally joins them at a barrier.  Each worker touches its own partition
    /// of the parallel working set (first touches become compulsory page
    /// faults), executes its share of the parallel work in
    /// `chunks_per_worker` iterations, issues its system calls, and arrives at
    /// the barrier.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn build(&self, library: &mut ProgramLibrary, workers: usize) -> GangScheduler {
        self.build_inner(library, workers, false)
    }

    /// Like [`Workload::build`], but the main shred pre-touches every worker
    /// page during the serial region — the optimization suggested in
    /// Section 5.3 of the paper, which converts would-be proxy executions into
    /// ordinary OMS-local faults before parallel execution starts.
    #[must_use]
    pub fn build_with_pretouch(
        &self,
        library: &mut ProgramLibrary,
        workers: usize,
    ) -> GangScheduler {
        self.build_inner(library, workers, true)
    }

    fn worker_set(&self, index: usize) -> Option<WorkingSet> {
        if self.params.worker_pages == 0 {
            return None;
        }
        let base = WORKER_BASE + index as u64 * self.params.worker_pages * PAGE_SIZE;
        Some(WorkingSet::new(
            format!("{}-worker{}", self.name, index),
            VirtAddr::new(base),
            self.params.worker_pages,
        ))
    }

    /// Emits the steady-state accesses of loop iteration `chunk` for the
    /// given locality profile.
    fn chunk_accesses(
        mut b: ProgramBuilder,
        locality: LocalityProfile,
        set: Option<&WorkingSet>,
        chunk: u64,
    ) -> ProgramBuilder {
        match locality {
            LocalityProfile::Revisit => {
                if let Some(set) = set {
                    b = b.load(set.page_addr(chunk % set.pages()));
                }
            }
            LocalityProfile::Streaming { pages_per_chunk } => {
                if let Some(set) = set {
                    let pages = set.pages();
                    for i in 0..pages_per_chunk {
                        b = b.load(set.page_addr((chunk * pages_per_chunk + i) % pages));
                    }
                }
            }
            LocalityProfile::Blocked {
                block_pages,
                touches_per_chunk,
            } => {
                if let Some(set) = set {
                    let block = block_pages.clamp(1, set.pages());
                    for i in 0..touches_per_chunk {
                        b = b.load(set.page_addr(i % block));
                    }
                }
            }
            LocalityProfile::SharedHotSet {
                pages,
                touches_per_chunk,
            } => {
                let pages = pages.max(1);
                for i in 0..touches_per_chunk {
                    let addr = VirtAddr::new(SHARED_BASE + ((chunk + i) % pages) * PAGE_SIZE);
                    b = if i % 4 == 0 {
                        b.store(addr)
                    } else {
                        b.load(addr)
                    };
                }
            }
        }
        b
    }

    fn build_inner(
        &self,
        library: &mut ProgramLibrary,
        workers: usize,
        pretouch: bool,
    ) -> GangScheduler {
        assert!(workers > 0, "a workload needs at least one worker");
        let p = &self.params;
        let per_worker_work = p.parallel_work() / workers as u64;
        let chunks = p.chunks_per_worker.max(1);
        let chunk_cycles = (per_worker_work / chunks).max(1);

        // --- worker programs -------------------------------------------------
        let mut worker_refs = Vec::with_capacity(workers);
        for w in 0..workers {
            let mut b = ProgramBuilder::new(format!("{}-worker{}", self.name, w));
            // Built once per worker: constructing the set formats its name,
            // and the chunk loop below consults it every iteration.
            let set = self.worker_set(w);
            if let Some(set) = set.as_ref() {
                // First-touch the worker's partition in the configured order.
                for addr in p.access_pattern.addresses(set) {
                    b = b.op(Op::load(addr));
                }
            }
            let syscall_period = chunks
                .checked_div(p.worker_syscalls)
                .map_or(0, |period| period.max(1));
            let mut issued_syscalls = 0;
            for c in 0..chunks {
                b = b.compute(Cycles::new(chunk_cycles));
                if p.lock_contention {
                    b = b
                        .mutex_lock(REDUCTION_MUTEX)
                        .compute(Cycles::new(200))
                        .mutex_unlock(REDUCTION_MUTEX);
                }
                // Steady-state accesses of this iteration, per the locality
                // profile (the default revisits one already-resident page:
                // TLB traffic, no new faults).
                b = Self::chunk_accesses(b, p.locality, set.as_ref(), c);
                if syscall_period > 0
                    && issued_syscalls < p.worker_syscalls
                    && (c + 1) % syscall_period == 0
                {
                    b = b.syscall(SyscallKind::Io);
                    issued_syscalls += 1;
                }
            }
            b = b.barrier_wait(FINISH_BARRIER);
            worker_refs.push(library.insert(b.build()));
        }

        // --- main program -----------------------------------------------------
        let mut main = ProgramBuilder::new(format!("{}-main", self.name)).op(Op::RegisterHandler);
        // Serial-region working set (OMS-local compulsory faults).
        if p.main_pages > 0 {
            main = main.touch_pages(VirtAddr::new(MAIN_BASE), p.main_pages);
        }
        if pretouch {
            for w in 0..workers {
                if let Some(set) = self.worker_set(w) {
                    main = main.touch_pages(set.base(), set.pages());
                }
            }
        }
        // Main-shred system calls (allocation, I/O setup) interleaved with the
        // serial compute in two halves.
        let serial = p.serial_work();
        let half_serial = serial / 2;
        main = main.compute(Cycles::new(half_serial.max(1)));
        for i in 0..p.main_syscalls {
            let kind = if i % 4 == 0 {
                SyscallKind::Memory
            } else {
                SyscallKind::Io
            };
            main = main.syscall(kind);
        }
        main = main.compute(Cycles::new((serial - half_serial).max(1)));
        for &w in &worker_refs {
            main = main.shred_create(w);
        }
        main = main.barrier_wait(FINISH_BARRIER);
        let main_ref = library.insert(main.build());

        let mut builder = GangScheduler::builder()
            .policy(SchedulingPolicy::Fifo)
            .main_program(main_ref)
            .barrier(FINISH_BARRIER, workers + 1);
        if p.lock_contention {
            // The mutex is created implicitly on first use, but declaring the
            // intent here keeps the configuration self-describing.
            builder = builder.semaphore(LockId::new(2), 0);
        }
        builder.build()
    }
}

/// A legacy application from Table 2 of the paper, described by the threading
/// API surface it uses.  The Table 2 experiment reports how much of that
/// surface ShredLib's thread-to-shred mapping covers mechanically.
#[derive(Debug, Clone)]
pub struct PortedApplication {
    /// Application name as listed in Table 2.
    pub name: &'static str,
    /// The paper's one-line description.
    pub description: &'static str,
    /// The threading API family the application is written against.
    pub api: LegacyApi,
    /// The threading API functions the application uses.
    pub functions: Vec<&'static str>,
    /// The porting effort, in days, reported by the paper (for reference
    /// only — human effort cannot be re-measured in simulation).
    pub paper_days: f64,
    /// Whether the paper reports that the port required structural changes.
    pub structural_changes: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_isa::RuntimeOp;

    fn sample() -> Workload {
        Workload::new(
            "sample",
            Suite::Rms,
            WorkloadParams {
                total_work: 8_000_000,
                serial_fraction: 0.1,
                main_pages: 4,
                worker_pages: 3,
                chunks_per_worker: 5,
                main_syscalls: 2,
                worker_syscalls: 1,
                ..WorkloadParams::default()
            },
        )
    }

    #[test]
    fn build_populates_library_with_workers_plus_main() {
        let mut lib = ProgramLibrary::new();
        let w = sample();
        let _sched = w.build(&mut lib, 4);
        assert_eq!(lib.len(), 5, "4 workers + 1 main");
        let names: Vec<&str> = lib.iter().map(|(_, p)| p.name()).collect();
        assert!(names.contains(&"sample-main"));
        assert!(names.contains(&"sample-worker3"));
    }

    #[test]
    fn main_program_creates_every_worker_and_registers_handler() {
        let mut lib = ProgramLibrary::new();
        let w = sample();
        let _ = w.build(&mut lib, 3);
        let main = lib
            .iter()
            .find(|(_, p)| p.name().ends_with("main"))
            .unwrap()
            .1;
        let ops: Vec<Op> = main.iter_flat().collect();
        assert_eq!(ops[0], Op::RegisterHandler);
        let creates = ops
            .iter()
            .filter(|o| matches!(o, Op::Runtime(RuntimeOp::ShredCreate { .. })))
            .count();
        assert_eq!(creates, 3);
        let faults = ops.iter().filter(|o| matches!(o, Op::Touch { .. })).count();
        assert_eq!(faults, 4, "main touches exactly its serial working set");
        let syscalls = ops.iter().filter(|o| matches!(o, Op::Syscall(_))).count();
        assert_eq!(syscalls, 2);
    }

    #[test]
    fn worker_program_touches_disjoint_pages_and_syscalls() {
        let mut lib = ProgramLibrary::new();
        let w = sample();
        let _ = w.build(&mut lib, 2);
        let pages_of = |name: &str| -> Vec<u64> {
            lib.iter()
                .find(|(_, p)| p.name() == name)
                .unwrap()
                .1
                .iter_flat()
                .filter_map(|o| match o {
                    Op::Touch { addr, .. } => Some(addr.page().number()),
                    _ => None,
                })
                .collect()
        };
        let w0: std::collections::BTreeSet<u64> = pages_of("sample-worker0").into_iter().collect();
        let w1: std::collections::BTreeSet<u64> = pages_of("sample-worker1").into_iter().collect();
        assert!(w0.is_disjoint(&w1), "worker working sets must not overlap");
        assert_eq!(w0.len(), 3);
    }

    #[test]
    fn pretouch_adds_worker_pages_to_main() {
        let mut lib = ProgramLibrary::new();
        let w = sample();
        let _ = w.build_with_pretouch(&mut lib, 2);
        let main = lib
            .iter()
            .find(|(_, p)| p.name().ends_with("main"))
            .unwrap()
            .1;
        let touches = main
            .iter_flat()
            .filter(|o| matches!(o, Op::Touch { .. }))
            .count();
        // 4 main pages + 2 workers x 3 pages each.
        assert_eq!(touches, 4 + 6);
    }

    #[test]
    fn zero_worker_pages_produces_no_touches() {
        let mut lib = ProgramLibrary::new();
        let w = Workload::new(
            "nopages",
            Suite::Rms,
            WorkloadParams {
                worker_pages: 0,
                main_pages: 0,
                ..WorkloadParams::default()
            },
        );
        let _ = w.build(&mut lib, 2);
        for (_, p) in lib.iter() {
            let touches = p
                .iter_flat()
                .filter(|o| matches!(o, Op::Touch { .. }))
                .count();
            assert_eq!(touches, 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let mut lib = ProgramLibrary::new();
        let _ = sample().build(&mut lib, 0);
    }

    #[test]
    fn accessors() {
        let w = sample();
        assert_eq!(w.name(), "sample");
        assert_eq!(w.suite(), Suite::Rms);
        assert!(w.params().serial_fraction > 0.0);
    }
}
