//! Declaring a custom cache-parameter sweep with the harness API.
//!
//! The predefined `cache_sensitivity` grid sweeps shared-L2 capacity; this
//! example shows how any cache parameter becomes a grid axis.  It crosses
//! two L1 geometries with three L2 geometries for the streaming workload on
//! the MISP uniprocessor, with the flat-cost (cache-disabled) run as the
//! common baseline — so every speedup reads as "what the cache model adds or
//! costs relative to the paper's flat memory model".
//!
//! Run with `cargo run --release --example cache_sweep`.

use misp::cache::CacheConfig;
use misp::harness::{
    run_grid, GridSpec, MachineSpec, RunSpec, SimSpec, SweepOptions, TopologySpec, VerifyMode,
};

const WORKLOAD: &str = "stream_walk";
const MISP_1X8: MachineSpec = MachineSpec::Misp(TopologySpec::Uniprocessor { ams: 7 });

fn main() {
    let mut grid = GridSpec::new(
        "cache_params",
        "stream_walk on MISP 1x8: L1 x L2 geometry cross, vs. the flat-cost model",
    );

    // The flat-cost baseline: the default disabled cache model.
    grid.push(RunSpec::sim(
        "flat",
        SimSpec::workload(WORKLOAD, MISP_1X8, 8),
    ));

    let l1_points: [(&str, u32, u32); 2] = [("l1_32k", 4, 2), ("l1_64k", 8, 2)];
    let l2_points: [(&str, u32, u32); 3] =
        [("l2_128k", 16, 2), ("l2_512k", 32, 4), ("l2_2m", 64, 8)];
    for (l1_label, l1_sets, l1_ways) in l1_points {
        for (l2_label, l2_sets, l2_ways) in l2_points {
            let spec = SimSpec::workload(WORKLOAD, MISP_1X8, 8).with_cache(
                CacheConfig::enabled_default()
                    .with_l1(l1_sets, l1_ways)
                    .with_l2(l2_sets, l2_ways),
            );
            grid.push(RunSpec::sim(format!("{l1_label}/{l2_label}"), spec).with_baseline("flat"));
        }
    }

    let options = SweepOptions {
        threads: 4,
        verify: VerifyMode::SpotCheck,
    };
    let results = run_grid(&grid, &options).expect("sweep");

    println!("{} ({} runs)", results.description, results.run_count);
    for record in &results.records {
        let Some(sim) = &record.sim else { continue };
        let misses = sim
            .cache
            .as_ref()
            .map_or(0, misp::cache::CacheStats::total_misses);
        let vs_flat = sim
            .speedup_vs_baseline
            .map_or_else(|| "baseline".to_string(), |s| format!("{s:.4}x vs flat"));
        println!(
            "  {:>16} [{}]: {:>11} cycles, {:>5} memory misses, {}",
            record.id,
            record.cache.as_deref().unwrap_or("flat cost"),
            sim.total_cycles,
            misses,
            vs_flat
        );
    }
}
