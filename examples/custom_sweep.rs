//! Declaring and running a custom experiment grid with the sweep harness.
//!
//! The predefined grids in `misp::harness::grids` reproduce the paper's
//! figures, but a grid is just data: this example builds its own mini-sweep
//! — two workloads, three machines each — fans it out across four OS
//! threads, and reads the aggregated speedups back from the results
//! document.
//!
//! Run with `cargo run --release --example custom_sweep`.

use misp::harness::{
    run_grid, GridSpec, MachineSpec, RunSpec, SimSpec, SweepOptions, TopologySpec, VerifyMode,
};

fn main() {
    let mut grid = GridSpec::new(
        "custom",
        "dense vs. sparse MVM on serial, MISP 1x8 and SMP 8",
    );
    for name in ["dense_mvm", "sparse_mvm"] {
        grid.push(RunSpec::sim(
            format!("{name}/serial"),
            SimSpec::workload(name, MachineSpec::Serial, 8),
        ));
        grid.push(
            RunSpec::sim(
                format!("{name}/misp"),
                SimSpec::workload(
                    name,
                    MachineSpec::Misp(TopologySpec::Uniprocessor { ams: 7 }),
                    8,
                ),
            )
            .with_baseline(format!("{name}/serial")),
        );
        grid.push(
            RunSpec::sim(
                format!("{name}/smp"),
                SimSpec::workload(name, MachineSpec::Smp { cores: 8 }, 8),
            )
            .with_baseline(format!("{name}/serial")),
        );
    }

    // Four threads; the harness spot-checks that parallel fan-out matched
    // serial execution bit for bit.
    let options = SweepOptions {
        threads: 4,
        verify: VerifyMode::SpotCheck,
    };
    let results = run_grid(&grid, &options).expect("sweep");

    println!("{} ({} runs)", results.description, results.run_count);
    for name in ["dense_mvm", "sparse_mvm"] {
        let misp = results.sim(&format!("{name}/misp")).unwrap();
        let smp = results.sim(&format!("{name}/smp")).unwrap();
        println!(
            "  {name:>12}: MISP {:.2}x, SMP {:.2}x over serial  (MISP log digest {})",
            misp.speedup_vs_baseline.unwrap(),
            smp.speedup_vs_baseline.unwrap(),
            misp.log_digest,
        );
    }

    // The aggregate is deterministic: any thread count yields the same JSON.
    let again = run_grid(
        &grid,
        &SweepOptions {
            threads: 1,
            verify: VerifyMode::Off,
        },
    )
    .expect("serial sweep");
    assert_eq!(
        results.to_canonical_json().unwrap(),
        again.to_canonical_json().unwrap()
    );
    println!("parallel and serial sweeps agree byte-for-byte");
}
