//! Porting a legacy Pthreads application to shreds (the Table 2 workflow).
//!
//! A legacy producer/consumer program written against Pthreads is (1) analysed
//! with ShredLib's thread-to-shred compatibility mapping, then (2) expressed
//! as the equivalent shredded program and executed on a MISP processor,
//! demonstrating that the mapping is a mechanical translation: every Pthreads
//! call has a ShredLib counterpart that the runtime implements with ordinary
//! Ring 3 operations.
//!
//! Run with `cargo run --release --example porting_pthreads`.

use misp::core::{MispMachine, MispTopology};
use misp::isa::{Op, ProgramBuilder, ProgramLibrary};
use misp::shredlib::{compat, GangScheduler};
use misp::sim::SimConfig;
use misp::types::{Cycles, LockId};

fn main() {
    // ------------------------------------------------------------------
    // Step 1: analyse the legacy application's threading-API surface.
    // ------------------------------------------------------------------
    let legacy_api_calls = [
        "pthread_create",
        "pthread_join",
        "pthread_mutex_lock",
        "pthread_mutex_unlock",
        "pthread_cond_wait",
        "pthread_cond_signal",
        "sem_init",
        "sem_wait",
        "sem_post",
    ];
    println!("legacy Pthreads producer/consumer - thread-to-shred mapping:");
    for call in &legacy_api_calls {
        match compat::lookup(call) {
            Some(entry) => println!("  {:<24} -> {}", call, entry.shredlib),
            None => println!("  {:<24} -> (no mapping)", call),
        }
    }
    let coverage = compat::coverage(legacy_api_calls.iter().copied());
    println!(
        "\n{} of {} API uses translate mechanically ({:.0}%)\n",
        coverage.mechanical.len(),
        coverage.total(),
        coverage.mechanical_fraction() * 100.0
    );

    // ------------------------------------------------------------------
    // Step 2: the same program, expressed with shreds and executed.
    // A bounded buffer of capacity 4 is modeled with two counting
    // semaphores (slots/items) and a mutex, exactly as the Pthreads
    // original would do.
    // ------------------------------------------------------------------
    let slots = LockId::new(10); // initialized to the buffer capacity
    let items = LockId::new(11); // initialized to zero
    let buffer_mutex = LockId::new(12);
    let done_barrier = LockId::new(13);
    const ITEMS: u64 = 200;

    let mut library = ProgramLibrary::new();
    let producer = library.insert(
        ProgramBuilder::new("producer")
            .repeat(ITEMS, |item| {
                item.sem_wait(slots)
                    .mutex_lock(buffer_mutex)
                    .compute(Cycles::new(2_000)) // produce into the buffer
                    .mutex_unlock(buffer_mutex)
                    .sem_post(items)
                    .compute(Cycles::new(20_000)) // prepare the next item
            })
            .barrier_wait(done_barrier)
            .build(),
    );
    let consumer = library.insert(
        ProgramBuilder::new("consumer")
            .repeat(ITEMS / 2, |item| {
                item.sem_wait(items)
                    .mutex_lock(buffer_mutex)
                    .compute(Cycles::new(2_000)) // remove from the buffer
                    .mutex_unlock(buffer_mutex)
                    .sem_post(slots)
                    .compute(Cycles::new(35_000)) // consume the item
            })
            .barrier_wait(done_barrier)
            .build(),
    );
    let main = library.insert(
        ProgramBuilder::new("main")
            .op(Op::RegisterHandler)
            .shred_create(producer) // was: pthread_create
            .shred_create(consumer)
            .shred_create(consumer)
            .barrier_wait(done_barrier) // was: pthread_join x3
            .build(),
    );

    let scheduler = GangScheduler::builder()
        .main_program(main)
        .semaphore(slots, 4)
        .semaphore(items, 0)
        .barrier(done_barrier, 4)
        .build();

    let topology = MispTopology::uniprocessor(3).expect("valid topology");
    let mut machine = MispMachine::new(topology, SimConfig::default(), library);
    machine.add_process("producer-consumer", Box::new(scheduler), Some(0));
    let report = machine.run().expect("simulation completes");

    println!("shredded producer/consumer executed on 1 OMS + 3 AMS:");
    println!(
        "  completion time      : {} cycles",
        report.total_cycles.as_u64()
    );
    println!("  proxy executions     : {}", report.stats.proxy_executions);
    println!(
        "  serializing events   : {}",
        report.stats.total_serializing_events()
    );
    println!("  user-level sync ops ran entirely in Ring 3 - no OS thread API was needed.");
}
