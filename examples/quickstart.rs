//! Quickstart: run a fork/join multi-shredded program on a MISP uniprocessor
//! (1 OMS + 3 AMS) and compare it against running the same program on a
//! single sequencer.
//!
//! Run with `cargo run --release --example quickstart`.

use misp::core::{MispMachine, MispTopology};
use misp::isa::{Op, ProgramBuilder, ProgramLibrary, SyscallKind};
use misp::shredlib::GangScheduler;
use misp::sim::{SimConfig, SimReport};
use misp::types::{Cycles, LockId, VirtAddr};

/// Builds the program library: one worker program and a main program that
/// registers the proxy handler, performs some serial setup (touching its
/// working set and making a system call), spawns four workers and joins them
/// at a barrier.
fn build_library() -> (ProgramLibrary, GangScheduler) {
    let barrier = LockId::new(0);
    let mut library = ProgramLibrary::new();

    let worker = library.insert(
        ProgramBuilder::new("worker")
            // Each worker touches its own 16-page slice of the data set; the
            // first touches on an AMS become proxy executions.
            .touch_pages(VirtAddr::new(0x4000_0000), 16)
            .repeat(20, |iter| iter.compute(Cycles::new(100_000)))
            .barrier_wait(barrier)
            .build(),
    );

    let main = library.insert(
        ProgramBuilder::new("main")
            .op(Op::RegisterHandler)
            .touch_pages(VirtAddr::new(0x1000_0000), 8)
            .syscall(SyscallKind::Memory)
            .compute(Cycles::new(500_000))
            .shred_create(worker)
            .shred_create(worker)
            .shred_create(worker)
            .shred_create(worker)
            .barrier_wait(barrier)
            .build(),
    );

    let scheduler = GangScheduler::builder()
        .main_program(main)
        .barrier(barrier, 5)
        .build();
    (library, scheduler)
}

fn run(ams: usize) -> SimReport {
    let (library, scheduler) = build_library();
    let topology = MispTopology::uniprocessor(ams).expect("valid topology");
    let mut machine = MispMachine::new(topology, SimConfig::default(), library);
    machine.add_process("quickstart", Box::new(scheduler), Some(0));
    machine.run().expect("simulation completes")
}

fn main() {
    let serial = run(0);
    let parallel = run(3);

    println!("MISP quickstart: 4 worker shreds + 1 main shred");
    println!(
        "  single sequencer : {:>12} cycles",
        serial.total_cycles.as_u64()
    );
    println!(
        "  1 OMS + 3 AMS    : {:>12} cycles  ({:.2}x speedup)",
        parallel.total_cycles.as_u64(),
        serial.total_cycles.as_f64() / parallel.total_cycles.as_f64()
    );
    println!();
    println!("architectural events on the 1 OMS + 3 AMS run:");
    println!(
        "  OMS-local page faults : {:>4}   (serial-region working set)",
        parallel.stats.oms_events.page_faults
    );
    println!(
        "  proxy executions      : {:>4}   (worker first-touches on AMSs)",
        parallel.stats.proxy_executions
    );
    println!(
        "  serialization episodes: {:>4}   (AMSs suspended across OMS ring transitions)",
        parallel.stats.serializations
    );
    println!(
        "  OS timer interrupts   : {:>4}",
        parallel.stats.oms_events.timer
    );
}
