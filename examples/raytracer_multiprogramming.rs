//! Multi-programming on MISP multiprocessors (the Figure 7 scenario in
//! miniature): the shredded RayTracer shares the machine with a
//! single-threaded competitor process under three different partitionings of
//! the same eight sequencers.
//!
//! Run with `cargo run --release --example raytracer_multiprogramming`.

use misp::core::{MispMachine, MispTopology};
use misp::isa::ProgramLibrary;
use misp::sim::SimConfig;
use misp::types::Cycles;
use misp::workloads::{catalog, competitor};

/// Runs RayTracer (decomposed into 32 task shreds) on `topology` with
/// `competitors` single-threaded processes competing for the OS-visible CPUs,
/// and returns RayTracer's completion time.
fn run(topology: &MispTopology, competitors: usize) -> Cycles {
    let raytracer = catalog::by_name("RayTracer").expect("RayTracer is in the catalog");
    let mut library = ProgramLibrary::new();
    let scheduler = raytracer.build(&mut library, 32);
    let competitor_programs: Vec<_> = (0..competitors)
        .map(|i| competitor::competitor_program(&mut library, i, 12_000_000_000))
        .collect();

    let mut machine = MispMachine::new(topology.clone(), SimConfig::default(), library);
    let ray = machine.add_process("RayTracer", Box::new(scheduler), Some(0));
    for proc_idx in 1..topology.processors().len() {
        if !topology.processors()[proc_idx].ams().is_empty() {
            machine.add_thread(ray, Some(proc_idx));
        }
    }
    for program in competitor_programs {
        machine.add_process(
            "competitor",
            Box::new(competitor::competitor_runtime(program)),
            None,
        );
    }
    machine.set_measured(vec![ray]);
    machine.run().expect("simulation completes").total_cycles
}

fn main() {
    let configs = [
        (
            "1x8   (one MISP processor, 7 AMSs)",
            MispTopology::config_1x8(),
        ),
        ("2x4   (two MISP processors)", MispTopology::config_2x4()),
        (
            "1x4+4 (one 4-sequencer MISP processor + 4 plain CPUs)",
            MispTopology::config_uneven(3, 4),
        ),
    ];

    println!("RayTracer throughput while one single-threaded process competes for CPU time");
    println!("(all configurations partition the same 8 sequencers)\n");
    for (name, topology) in &configs {
        let unloaded = run(topology, 0);
        let loaded = run(topology, 1);
        println!("configuration {name}");
        println!("  unloaded: {:>13} cycles", unloaded.as_u64());
        println!(
            "  loaded  : {:>13} cycles   ({:.1}% of unloaded throughput retained)",
            loaded.as_u64(),
            100.0 * unloaded.as_f64() / loaded.as_f64()
        );
    }
    println!();
    println!("With a single MISP processor (1x8) the competitor time-shares the only");
    println!("OS-visible CPU, idling all seven AMSs half the time.  Splitting the machine");
    println!("into more MISP processors (2x4) localizes the damage, and reserving plain");
    println!("single-sequencer CPUs for non-shredded work (1x4+4) removes it entirely —");
    println!("exactly the trade-off the paper's Figure 7 explores.");
}
