//! Programming MISP at the architecture level: the `SIGNAL` instruction and
//! proxy execution, without the ShredLib gang scheduler.
//!
//! The main shred (on the OS-managed sequencer) registers a proxy handler via
//! the YIELD-CONDITIONAL mechanism and then uses `SIGNAL(sid, eip, esp)` to
//! start a shred directly on an application-managed sequencer — the minimal
//! usage pattern of Section 2.4.  The signalled shred immediately touches
//! fresh pages and issues a system call, both of which it cannot service
//! itself; the simulator shows them being relayed to the OMS as proxy
//! executions.
//!
//! Run with `cargo run --release --example signal_and_proxy`.

use misp::core::{MispMachine, MispTopology};
use misp::isa::{Continuation, Op, ProgramBuilder, ProgramLibrary, ProgramRef, SyscallKind};
use misp::sim::SimConfig;
use misp::sim::SingleShredRuntime;
use misp::types::{Cycles, SequencerId, VirtAddr};

fn main() {
    let mut library = ProgramLibrary::new();

    // The shred we will start on the AMS via SIGNAL.  ProgramRef(0).
    let remote = library.insert(
        ProgramBuilder::new("signalled-shred")
            .touch_pages(VirtAddr::new(0x5000_0000), 4) // page faults -> proxy execution
            .compute(Cycles::new(2_000_000))
            .syscall(SyscallKind::Io) // system call -> proxy execution
            .compute(Cycles::new(1_000_000))
            .build(),
    );
    assert_eq!(remote, ProgramRef::new(0));

    // The main program running on the OMS: register the proxy handler, then
    // SIGNAL sequencer 1 (the first AMS) with the shred continuation, then
    // keep computing in parallel with it.
    let continuation = Continuation::for_program(remote);
    let main = library.insert(
        ProgramBuilder::new("main")
            .op(Op::RegisterHandler)
            .op(Op::Signal {
                target: SequencerId::new(1),
                continuation,
            })
            .compute(Cycles::new(5_000_000))
            .build(),
    );

    let topology = MispTopology::uniprocessor(3).expect("valid topology");
    let mut machine = MispMachine::new(topology, SimConfig::default(), library);
    machine.add_process(
        "signal-demo",
        Box::new(SingleShredRuntime::new(main)),
        Some(0),
    );
    let report = machine.run().expect("simulation completes");

    println!("SIGNAL + proxy execution demo (1 OMS + 3 AMS)");
    println!(
        "  completion time        : {} cycles",
        report.total_cycles.as_u64()
    );
    println!("  user-level SIGNALs sent : {}", report.stats.signals_sent);
    println!(
        "  proxy executions        : {} (4 page faults + 1 system call on the AMS)",
        report.stats.proxy_executions
    );
    println!(
        "  AMS page faults         : {}",
        report.stats.ams_events.page_faults
    );
    println!(
        "  AMS system calls        : {}",
        report.stats.ams_events.syscalls
    );
    println!(
        "  OMS busy cycles         : {}",
        report.stats.per_sequencer[0].busy.as_u64()
    );
    println!(
        "  AMS#1 busy cycles       : {}",
        report.stats.per_sequencer[1].busy.as_u64()
    );
    println!();
    println!("The signalled shred made forward progress on the AMS even though it needed");
    println!("OS services: every fault was relayed to the OMS, serviced there, and the");
    println!("shred's context handed back - the architectural guarantee of Section 2.5.");
}
