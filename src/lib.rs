//! # MISP — Multiple Instruction Stream Processor (reproduction)
//!
//! A cycle-approximate, deterministic reproduction of the architecture
//! presented in *"Multiple Instruction Stream Processor"* (Hankins, Chinya,
//! Collins, Wang, Rakvic, Wang, Shen — ISCA 2006), together with everything
//! needed to regenerate the paper's evaluation: the ShredLib user-level
//! runtime, an SMP baseline machine, calibrated synthetic models of the
//! paper's workloads, and one experiment harness per table and figure.
//!
//! This crate is a facade: it re-exports the public API of every workspace
//! crate so applications can depend on a single package.  The pieces are:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`types`] | `misp-types` | identifiers, cycle arithmetic, privilege rings, the cost model |
//! | [`isa`] | `misp-isa` | abstract instruction streams, shred programs, continuations |
//! | [`cache`] | `misp-cache` | the coherent cache hierarchy: per-sequencer L1s, per-processor shared L2s, MESI-lite coherence (disabled by default) |
//! | [`mem`] | `misp-mem` | address spaces, TLBs, working sets, access patterns |
//! | [`os`] | `misp-os` | the OS model: kernel services, scheduler, timer |
//! | [`trace`] | `misp-trace` | deterministic trace ring, interval metrics sampler, queue self-profiling, Perfetto exporter |
//! | [`sim`] | `misp-sim` | the discrete-event execution engine: per-machine shards, the conservatively-synchronized fleet engine, extension traits |
//! | [`core`] | `misp-core` | **the MISP architecture**: sequencers, SIGNAL, proxy execution, serialization, the overhead model |
//! | [`smp`] | `misp-smp` | the SMP baseline machine |
//! | [`shredlib`] | `shredlib` | the gang scheduler, synchronization objects, compatibility shims |
//! | [`workloads`] | `misp-workloads` | the benchmark catalog and run helpers |
//! | [`harness`] | `misp-harness` | the parallel experiment-sweep harness: declarative grids, work-stealing fan-out, versioned results JSON |
//!
//! # Quick start
//!
//! Run a small fork/join program on a MISP uniprocessor with one OS-managed
//! and three application-managed sequencers:
//!
//! ```
//! use misp::core::{MispMachine, MispTopology};
//! use misp::isa::{Op, ProgramBuilder, ProgramLibrary};
//! use misp::shredlib::GangScheduler;
//! use misp::sim::SimConfig;
//! use misp::types::{Cycles, LockId};
//!
//! // Worker: compute, then arrive at the barrier.
//! let barrier = LockId::new(0);
//! let mut library = ProgramLibrary::new();
//! let worker = library.insert(
//!     ProgramBuilder::new("worker")
//!         .compute(Cycles::new(1_000_000))
//!         .barrier_wait(barrier)
//!         .build(),
//! );
//! // Main: register the proxy handler, spawn three workers, join them.
//! let main = library.insert(
//!     ProgramBuilder::new("main")
//!         .op(Op::RegisterHandler)
//!         .shred_create(worker)
//!         .shred_create(worker)
//!         .shred_create(worker)
//!         .barrier_wait(barrier)
//!         .build(),
//! );
//!
//! let topology = MispTopology::uniprocessor(3).unwrap();
//! let mut machine = MispMachine::new(topology, SimConfig::default(), library);
//! let scheduler = GangScheduler::builder()
//!     .main_program(main)
//!     .barrier(barrier, 4)
//!     .build();
//! machine.add_process("quickstart", Box::new(scheduler), Some(0));
//! let report = machine.run().unwrap();
//! // Three workers and the main shred overlap on four sequencers.
//! assert!(report.total_cycles < Cycles::new(2_500_000));
//! ```
//!
//! # Reproducing the paper
//!
//! Each table and figure has a dedicated binary in the `misp-bench` crate;
//! see `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for the
//! recorded paper-versus-measured comparison.  All of them are thin
//! formatters over the [`harness`] crate's named experiment grids, which the
//! `sweep` binary can also run directly:
//!
//! ```text
//! cargo run --release -p misp-harness --bin sweep -- fig4 --threads 8 --out results/fig4-sweep.json
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use misp_cache as cache;
pub use misp_core as core;
pub use misp_harness as harness;
pub use misp_isa as isa;
pub use misp_mem as mem;
pub use misp_os as os;
pub use misp_sim as sim;
pub use misp_smp as smp;
pub use misp_trace as trace;
pub use misp_types as types;
pub use misp_workloads as workloads;
pub use shredlib;
