//! Cross-crate integration tests: the architectural invariants the MISP paper
//! relies on, checked end-to-end through the facade crate.

use misp::core::{MispTopology, OverheadModel};
use misp::mem::AccessPattern;
use misp::os::TimerConfig;
use misp::sim::SimConfig;
use misp::types::{CostModel, Cycles, SignalCost};
use misp::workloads::{LocalityProfile, Machine, Run, RunOptions, Suite, Workload, WorkloadParams};

/// A small, fast workload used by most tests below.
fn small_workload() -> Workload {
    Workload::new(
        "itest",
        Suite::Rms,
        WorkloadParams {
            total_work: 400_000_000,
            serial_fraction: 0.05,
            main_pages: 20,
            worker_pages: 12,
            chunks_per_worker: 20,
            main_syscalls: 3,
            worker_syscalls: 0,
            access_pattern: AccessPattern::Shuffled { seed: 3 },
            lock_contention: false,
            locality: LocalityProfile::Revisit,
        },
    )
}

fn config() -> SimConfig {
    SimConfig {
        timer: TimerConfig::new(Cycles::new(3_000_000), 10),
        ..SimConfig::default()
    }
}

/// Runs `workload` with 8 workers on `machine` under the test config.
fn run_on(workload: &Workload, machine: Machine) -> misp::sim::SimReport {
    Run::workload(workload)
        .machine(machine)
        .config(config())
        .execute()
        .unwrap()
}

#[test]
fn misp_tracks_smp_within_a_few_percent() {
    let w = small_workload();
    let topo = MispTopology::uniprocessor(7).unwrap();
    let serial = run_on(&w, Machine::Serial);
    let misp = run_on(&w, Machine::Misp(topo.clone()));
    let smp = run_on(&w, Machine::smp(8));

    let misp_speedup = serial.total_cycles.as_f64() / misp.total_cycles.as_f64();
    let smp_speedup = serial.total_cycles.as_f64() / smp.total_cycles.as_f64();
    assert!(misp_speedup > 5.0, "MISP speedup {misp_speedup:.2}");
    assert!(smp_speedup > 5.0, "SMP speedup {smp_speedup:.2}");
    let gap = (misp_speedup - smp_speedup).abs() / smp_speedup;
    assert!(
        gap < 0.05,
        "MISP and SMP must stay within a few percent (paper Figure 4); gap = {:.1}%",
        gap * 100.0
    );
}

#[test]
fn ams_faults_are_exactly_the_proxy_executions() {
    let w = small_workload();
    let topo = MispTopology::uniprocessor(7).unwrap();
    let report = run_on(&w, Machine::Misp(topo.clone()));
    assert_eq!(
        report.stats.proxy_executions,
        report.stats.ams_events.total(),
        "every AMS-originated privileged event must be handled by proxy execution"
    );
    assert!(report.stats.ams_events.page_faults > 0);
    // The SMP baseline never uses proxy execution.
    let smp = run_on(&w, Machine::smp(8));
    assert_eq!(smp.stats.proxy_executions, 0);
    assert_eq!(smp.stats.ams_events.total(), 0);
    assert_eq!(smp.stats.serializations, 0);
}

#[test]
fn page_faults_are_compulsory_only() {
    // Total page faults (OMS + AMS) must equal the number of distinct pages
    // touched: main pages + per-worker pages (first touch faults exactly once
    // regardless of which sequencer touches it).
    let w = small_workload();
    let topo = MispTopology::uniprocessor(7).unwrap();
    let report = run_on(&w, Machine::Misp(topo.clone()));
    let expected = w.params().main_pages + w.params().worker_pages * 8;
    let measured = report.stats.oms_events.page_faults + report.stats.ams_events.page_faults;
    assert_eq!(measured, expected);
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let w = small_workload();
    let topo = MispTopology::uniprocessor(7).unwrap();
    let a = run_on(&w, Machine::Misp(topo.clone()));
    let b = run_on(&w, Machine::Misp(topo.clone()));
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.stats.oms_events, b.stats.oms_events);
    assert_eq!(a.stats.ams_events, b.stats.ams_events);
    assert_eq!(a.stats.proxy_executions, b.stats.proxy_executions);
    assert_eq!(a.stats.suspension_cycles, b.stats.suspension_cycles);
}

#[test]
fn signal_cost_sweep_is_monotone_and_small() {
    let w = small_workload();
    let topo = MispTopology::uniprocessor(7).unwrap();
    let run = |signal: SignalCost| {
        let cfg = config().with_costs(CostModel::builder().signal(signal).build());
        Run::workload(&w)
            .topology(topo.clone())
            .config(cfg)
            .execute()
            .unwrap()
            .total_cycles
    };
    let ideal = run(SignalCost::Ideal);
    let c500 = run(SignalCost::Aggressive500);
    let c1000 = run(SignalCost::Aggressive1000);
    let c5000 = run(SignalCost::Microcode5000);
    assert!(ideal <= c500 && c500 <= c1000 && c1000 <= c5000);
    let overhead = c5000.as_f64() / ideal.as_f64() - 1.0;
    assert!(
        overhead < 0.03,
        "5000-cycle signaling should cost at most a few percent, got {:.2}%",
        overhead * 100.0
    );
    // The analytic model (Equations 1-3) bounds the measured overhead from
    // above for this fault profile (it assumes no overlap between windows).
    let baseline = Run::workload(&w)
        .topology(topo.clone())
        .config(config().with_costs(CostModel::builder().signal(SignalCost::Ideal).build()))
        .execute()
        .unwrap();
    let model = OverheadModel::new(CostModel::default());
    let analytic = model.signal_overhead(
        baseline.stats.oms_events.total(),
        baseline.stats.ams_events.total(),
    );
    assert!(
        (c5000 - ideal).as_u64() <= analytic.as_u64() * 3,
        "measured overhead should be of the same order as the analytic bound"
    );
}

#[test]
fn speedup_never_exceeds_sequencer_count() {
    let w = small_workload();
    for ams in [0usize, 1, 3, 7] {
        let topo = MispTopology::uniprocessor(ams).unwrap();
        let serial = run_on(&w, Machine::Serial);
        let parallel = run_on(&w, Machine::Misp(topo.clone()));
        let speedup = serial.total_cycles.as_f64() / parallel.total_cycles.as_f64();
        assert!(
            speedup <= (ams + 1) as f64 + 0.01,
            "speedup {speedup:.2} exceeds {} sequencers",
            ams + 1
        );
        if ams > 0 {
            assert!(
                speedup > 1.0,
                "adding AMSs must help ({ams} AMSs: {speedup:.2})"
            );
        }
    }
}

#[test]
fn pretouch_moves_faults_from_ams_to_oms() {
    let w = small_workload();
    let topo = MispTopology::uniprocessor(7).unwrap();
    let base = run_on(&w, Machine::Misp(topo.clone()));
    let pre = Run::workload(&w)
        .topology(topo.clone())
        .config(config())
        .options(RunOptions {
            pretouch: true,
            ..RunOptions::default()
        })
        .execute()
        .unwrap();
    assert!(base.stats.ams_events.page_faults > 0);
    assert_eq!(pre.stats.ams_events.page_faults, 0);
    let total_base = base.stats.oms_events.page_faults + base.stats.ams_events.page_faults;
    let total_pre = pre.stats.oms_events.page_faults;
    assert_eq!(
        total_base, total_pre,
        "pre-touching must not change the fault total"
    );
}
