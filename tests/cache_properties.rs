//! Property tests for the memory-hierarchy state machines: `Tlb` LRU
//! replacement and the `misp-cache` LRU/MESI hierarchy, driven by random
//! access/invalidate sequences.  Each sequence checks two kinds of promise:
//! structural invariants (LRU content matches a reference model, MESI
//! single-writer holds, no set overflows its associativity) and accounting
//! conservation (hits + misses equal the accesses performed).
//!
//! A behavioural test rides along: with the cache model enabled, the
//! streaming and blocked locality variants — identical in work and touch
//! count — must separate by a measurable miss-latency difference, and the
//! shared-hot-set variant must pay coherence misses on SMP but resolve its
//! sharing inside the MISP processor's shared L2.

use misp::cache::{CacheConfig, CacheGeometry, CacheHierarchy, MesiState, SetAssocCache};
use misp::core::MispTopology;
use misp::mem::Tlb;
use misp::os::TimerConfig;
use misp::sim::SimConfig;
use misp::types::{Cycles, PageId, SequencerId, VirtAddr, PAGE_SIZE};
use misp::workloads::{catalog, Machine, Run};
use proptest::prelude::*;

/// Deterministic splitmix64 stream for deriving operation sequences from one
/// generated seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The TLB against a reference true-LRU model: identical hit/miss
    /// verdicts and identical content after every operation, capacity always
    /// respected, and the hit/miss counters conserving the lookups issued.
    #[test]
    fn tlb_lru_matches_a_reference_model(
        input in (any::<u64>(), 1u64..9, 1u64..240)
    ) {
        let (seed, capacity, ops) = input;
        let capacity = capacity as usize;
        let mut tlb = Tlb::new(capacity);
        // Reference model: most-recently-used page at the back.
        let mut model: Vec<u64> = Vec::new();
        let mut state = seed;
        let (mut lookups, mut hits) = (0u64, 0u64);
        for _ in 0..ops {
            let r = splitmix(&mut state);
            let page = r % 12;
            match r % 16 {
                14 => {
                    tlb.flush();
                    model.clear();
                }
                15 => {
                    tlb.invalidate(PageId::new(page));
                    model.retain(|p| *p != page);
                }
                _ => {
                    lookups += 1;
                    let hit = tlb.lookup_insert(PageId::new(page));
                    let model_hit = model.contains(&page);
                    prop_assert_eq!(hit, model_hit, "page {}", page);
                    if hit {
                        hits += 1;
                    }
                    model.retain(|p| *p != page);
                    model.push(page);
                    if model.len() > capacity {
                        model.remove(0);
                    }
                }
            }
            prop_assert!(tlb.len() <= capacity);
            prop_assert_eq!(tlb.len(), model.len());
            for p in &model {
                prop_assert!(tlb.contains(PageId::new(*p)), "model page {} cached", p);
            }
        }
        let stats = tlb.stats();
        prop_assert_eq!(stats.hits, hits);
        prop_assert_eq!(stats.hits + stats.misses, lookups, "lookups conserved");
    }

    /// One set-associative level against a per-set reference LRU model.
    #[test]
    fn set_assoc_lru_matches_a_reference_model(
        input in (any::<u64>(), 1u64..4, 1u64..4, 1u64..240)
    ) {
        let (seed, sets, ways, ops) = input;
        let mut cache = SetAssocCache::new(CacheGeometry::new(sets as u32, ways as u32));
        // Reference model: one MRU-at-the-back line list per set.
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
        let mut state = seed;
        for _ in 0..ops {
            let r = splitmix(&mut state);
            let line = r % 16;
            let set = (line % sets) as usize;
            match r % 8 {
                7 => {
                    cache.invalidate(line);
                    model[set].retain(|l| *l != line);
                }
                _ => {
                    let hit = cache.lookup(line).is_some();
                    prop_assert_eq!(hit, model[set].contains(&line));
                    if !hit {
                        cache.insert(line, MesiState::Exclusive);
                    }
                    model[set].retain(|l| *l != line);
                    model[set].push(line);
                    if model[set].len() > ways as usize {
                        model[set].remove(0);
                    }
                }
            }
            let model_len: usize = model.iter().map(Vec::len).sum();
            prop_assert_eq!(cache.len(), model_len);
            for lines in &model {
                for l in lines {
                    prop_assert!(cache.peek(*l).is_some(), "model line {} cached", l);
                }
            }
        }
    }

    /// The full hierarchy under random load/store/flush sequences: the MESI
    /// single-writer invariant holds after every operation, a store leaves
    /// its issuer the sole (Modified) holder, and per-sequencer stats
    /// conserve the accesses issued.
    #[test]
    fn hierarchy_mesi_invariants_hold_and_stats_conserve(
        input in (any::<u64>(), 1u64..300)
    ) {
        let (seed, ops) = input;
        // Four sequencers in two clusters, caches small enough to evict.
        let config = CacheConfig::enabled_default().with_l1(2, 2).with_l2(4, 2);
        let mut h = CacheHierarchy::new(config, &[0, 0, 1, 1]);
        let mut state = seed;
        let mut accesses = [0u64; 4];
        for _ in 0..ops {
            let r = splitmix(&mut state);
            let s = (r % 4) as u32;
            let seq = SequencerId::new(s);
            let addr = VirtAddr::new(((r >> 8) % 24) * PAGE_SIZE);
            match r % 16 {
                15 => h.flush_l1(seq),
                k => {
                    let store = k % 3 == 0;
                    accesses[s as usize] += 1;
                    h.access(seq, 0, addr, store);
                    if store {
                        prop_assert_eq!(
                            h.probe(seq, 0, addr),
                            Some(MesiState::Modified),
                            "the storer owns the line"
                        );
                        for other in 0..4u32 {
                            if other != s {
                                prop_assert_eq!(
                                    h.probe(SequencerId::new(other), 0, addr),
                                    None,
                                    "remote copies are invalidated"
                                );
                            }
                        }
                    }
                }
            }
            h.assert_coherence_invariants();
        }
        for (i, expected) in accesses.iter().enumerate() {
            let stats = h.stats(SequencerId::new(i as u32)).unwrap();
            prop_assert_eq!(stats.accesses(), *expected, "sequencer {} conserves", i);
        }
    }
}

fn quick_config() -> SimConfig {
    SimConfig {
        timer: TimerConfig::new(Cycles::new(3_000_000), 10),
        ..SimConfig::default()
    }
}

/// A small shared L2 (128 KiB), where the streaming footprint cannot fit.
fn small_cache() -> CacheConfig {
    CacheConfig::enabled_default().with_l2(16, 2)
}

#[test]
fn streaming_pays_a_measurable_miss_latency_over_blocked() {
    let stream = catalog::by_name("stream_walk").expect("cache variant");
    let blocked = catalog::by_name("blocked_walk").expect("cache variant");
    let topo = MispTopology::uniprocessor(7).unwrap();
    let config = quick_config().with_cache(small_cache());
    let s = Run::workload(&stream)
        .topology(topo.clone())
        .config(config)
        .execute()
        .unwrap();
    let b = Run::workload(&blocked)
        .topology(topo.clone())
        .config(config)
        .execute()
        .unwrap();
    let s_cache = s.stats.cache.expect("cache stats present when enabled");
    let b_cache = b.stats.cache.expect("cache stats present when enabled");
    assert!(
        s_cache.capacity_misses > 100 * b_cache.capacity_misses.max(1),
        "streaming must thrash where blocking fits: {} vs {}",
        s_cache.capacity_misses,
        b_cache.capacity_misses
    );
    assert!(
        s.total_cycles > b.total_cycles,
        "the miss latency must be visible in end-to-end cycles: {} vs {}",
        s.total_cycles,
        b.total_cycles
    );
}

#[test]
fn shared_hot_set_pays_coherence_on_smp_but_not_inside_a_shared_l2() {
    let hotset = catalog::by_name("hotset_update").expect("cache variant");
    let config = quick_config().with_cache(small_cache());
    let misp = Run::workload(&hotset)
        .topology(MispTopology::uniprocessor(7).unwrap())
        .config(config)
        .execute()
        .unwrap();
    let smp = Run::workload(&hotset)
        .machine(Machine::smp(8))
        .config(config)
        .execute()
        .unwrap();
    let misp_cache = misp.stats.cache.expect("cache stats present");
    let smp_cache = smp.stats.cache.expect("cache stats present");
    assert!(misp_cache.invalidations > 0, "stores invalidate peer L1s");
    assert_eq!(
        misp_cache.coherence_misses, 0,
        "one MISP processor resolves its sharing in the shared L2"
    );
    assert!(
        smp_cache.coherence_misses > 0,
        "per-core L2s force coherence misses across the fabric"
    );
}

#[test]
fn disabled_cache_reports_no_cache_stats_but_tlb_totals_surface() {
    let w = catalog::by_name("stream_walk").expect("cache variant");
    let topo = MispTopology::uniprocessor(7).unwrap();
    let report = Run::workload(&w)
        .topology(topo.clone())
        .config(quick_config())
        .execute()
        .unwrap();
    assert!(
        report.stats.cache.is_none(),
        "no cache stats under the default flat-cost model"
    );
    assert!(report.stats.per_sequencer_cache.is_empty());
    assert!(
        report.stats.tlb.hits + report.stats.tlb.misses > 0,
        "TLB totals are aggregated into the report"
    );
    assert_eq!(
        report.stats.per_sequencer_tlb.len(),
        8,
        "one TLB snapshot per sequencer"
    );
}
