//! Determinism property tests.
//!
//! The engine promises strict determinism: given the same configuration,
//! workload and platform, two runs produce identical cycle counts,
//! statistics and event logs.  The parallel sweep harness additionally
//! promises that fanning runs out across OS threads changes nothing.  These
//! tests pin both promises for **every** catalog workload on both machines.

use misp::core::MispTopology;
use misp::harness::{
    artifacts, grids, run_grid, run_grid_with_artifacts, GridSpec, MachineSpec, RunSpec, SimSpec,
    SweepOptions, TopologySpec, VerifyMode,
};
use misp::os::TimerConfig;
use misp::sim::{SimConfig, SimReport};
use misp::types::Cycles;
use misp::workloads::{catalog, Machine, Run};

fn quick_config() -> SimConfig {
    SimConfig {
        timer: TimerConfig::new(Cycles::new(3_000_000), 10),
        ..SimConfig::default()
    }
}

/// Asserts two reports are fully identical: completion times, every Table 1
/// statistic, per-sequencer utilization, and the event-log digest.
fn assert_reports_identical(a: &SimReport, b: &SimReport, context: &str) {
    assert_eq!(a.total_cycles, b.total_cycles, "{context}: total cycles");
    assert_eq!(a.completions, b.completions, "{context}: completions");
    assert_eq!(a.log_digest, b.log_digest, "{context}: event-log digest");
    assert_eq!(
        a.stats.oms_events, b.stats.oms_events,
        "{context}: OMS events"
    );
    assert_eq!(
        a.stats.ams_events, b.stats.ams_events,
        "{context}: AMS events"
    );
    assert_eq!(
        a.stats.proxy_executions, b.stats.proxy_executions,
        "{context}: proxy executions"
    );
    assert_eq!(
        a.stats.serializations, b.stats.serializations,
        "{context}: serializations"
    );
    assert_eq!(
        a.stats.context_switches, b.stats.context_switches,
        "{context}: context switches"
    );
    assert_eq!(
        a.stats.signals_sent, b.stats.signals_sent,
        "{context}: signals"
    );
    assert_eq!(
        a.stats.suspension_cycles, b.stats.suspension_cycles,
        "{context}: suspension cycles"
    );
    assert_eq!(
        a.stats.per_sequencer, b.stats.per_sequencer,
        "{context}: per-sequencer utilization"
    );
    assert_eq!(
        a.stats.per_sequencer_events, b.stats.per_sequencer_events,
        "{context}: per-sequencer events"
    );
}

/// Every catalog workload runs twice on MISP and twice on SMP; each pair
/// must be identical down to the event-log digest.
#[test]
fn every_workload_is_deterministic_on_both_machines() {
    let topology = MispTopology::uniprocessor(7).unwrap();
    let on_misp = |workload: &misp::workloads::Workload| {
        Run::workload(workload)
            .topology(topology.clone())
            .config(quick_config())
            .execute()
            .unwrap()
    };
    let on_smp = |workload: &misp::workloads::Workload| {
        Run::workload(workload)
            .machine(Machine::smp(8))
            .config(quick_config())
            .execute()
            .unwrap()
    };
    for workload in catalog::all() {
        let name = workload.name();
        let misp_a = on_misp(&workload);
        let misp_b = on_misp(&workload);
        assert_reports_identical(&misp_a, &misp_b, &format!("{name} on MISP"));

        let smp_a = on_smp(&workload);
        let smp_b = on_smp(&workload);
        assert_reports_identical(&smp_a, &smp_b, &format!("{name} on SMP"));

        // MISP and SMP are different platforms and must not be conflated by
        // the digest: their logs differ (MISP suspends and proxies).
        assert_ne!(
            misp_a.log_digest, smp_a.log_digest,
            "{name}: MISP and SMP runs must have distinct event logs"
        );
    }
}

/// A grid covering every workload on MISP and SMP, swept serially and with
/// parallel fan-out: the aggregated documents must be byte-identical, and
/// each parallel record must match a direct (harness-free) run.
#[test]
fn parallel_harness_matches_serial_execution_for_every_workload() {
    let mut grid = GridSpec::new("determinism", "every workload on MISP and SMP");
    for workload in catalog::all() {
        let name = workload.name();
        grid.push(RunSpec::sim(
            format!("{name}/misp"),
            SimSpec::workload(
                name,
                MachineSpec::Misp(TopologySpec::Uniprocessor { ams: 7 }),
                8,
            ),
        ));
        grid.push(RunSpec::sim(
            format!("{name}/smp"),
            SimSpec::workload(name, MachineSpec::Smp { cores: 8 }, 8),
        ));
    }

    let serial = run_grid(
        &grid,
        &SweepOptions {
            threads: 1,
            verify: VerifyMode::Off,
        },
    )
    .unwrap();
    // VerifyMode::Full additionally re-executes every point on the main
    // thread inside run_grid and asserts record equality there.
    let parallel = run_grid(
        &grid,
        &SweepOptions {
            threads: 8,
            verify: VerifyMode::Full,
        },
    )
    .unwrap();

    assert_eq!(serial, parallel);
    assert_eq!(
        serial.to_canonical_json().unwrap(),
        parallel.to_canonical_json().unwrap(),
        "aggregated JSON must be byte-identical across thread counts"
    );

    // Cross-check the harness against direct runner invocations: the sweep
    // must report exactly what a hand-rolled run loop sees.
    let topology = MispTopology::uniprocessor(7).unwrap();
    for workload in catalog::all() {
        let name = workload.name();
        let direct = Run::workload(&workload)
            .topology(topology.clone())
            .config(misp::harness::experiment_config())
            .execute()
            .unwrap();
        let record = parallel.sim(&format!("{name}/misp")).unwrap();
        assert_eq!(record.total_cycles, direct.total_cycles.as_u64(), "{name}");
        assert_eq!(
            record.log_digest,
            format!("{:016x}", direct.log_digest),
            "{name}: digest mismatch between harness and direct run"
        );
    }
}

/// The predefined fig4 grid — the one CI smokes — is itself reproducible
/// end-to-end: two full sweeps at different thread counts serialize
/// identically.
/// The open-loop scenario grid is as reproducible as the closed-loop ones:
/// the seeded arrival streams, queue admission and latency histograms all
/// replay exactly, so two sweeps at different thread counts serialize
/// identically.
#[test]
fn service_load_grid_sweeps_identically_at_different_thread_counts() {
    let grid = grids::service_load();
    let one = run_grid(
        &grid,
        &SweepOptions {
            threads: 1,
            verify: VerifyMode::Off,
        },
    )
    .unwrap();
    let eight = run_grid(
        &grid,
        &SweepOptions {
            threads: 8,
            verify: VerifyMode::Full,
        },
    )
    .unwrap();
    assert_eq!(
        one.to_canonical_json().unwrap(),
        eight.to_canonical_json().unwrap(),
        "scenario sweeps must be byte-identical across thread counts"
    );
}

/// The fleet grid is byte-identical across thread counts too: conservative
/// cross-machine synchronization makes every machine's event order a pure
/// function of the spec, so the per-machine records, fleet digests and
/// merged latency histograms all replay exactly under 8-way fan-out.
#[test]
fn fleet_service_grid_sweeps_identically_at_different_thread_counts() {
    let grid = grids::fleet_service();
    let one = run_grid(
        &grid,
        &SweepOptions {
            threads: 1,
            verify: VerifyMode::Off,
        },
    )
    .unwrap();
    let eight = run_grid(
        &grid,
        &SweepOptions {
            threads: 8,
            verify: VerifyMode::Full,
        },
    )
    .unwrap();
    assert_eq!(
        one.to_canonical_json().unwrap(),
        eight.to_canonical_json().unwrap(),
        "fleet sweeps must be byte-identical across thread counts"
    );
}

/// Observability artifacts obey the same thread-count invariance as the
/// results document: a traced, sampled grid swept serially and with 8-way
/// fan-out produces byte-identical trace exports, trace digests and
/// interval-metrics JSONL streams.
#[test]
fn trace_and_metrics_artifacts_are_identical_at_any_thread_count() {
    let mut grid = GridSpec::new("traced", "observability determinism grid");
    for (name, workers) in [("dense_mvm", 4), ("kmeans", 4)] {
        grid.push(RunSpec::sim(
            format!("{name}/misp"),
            SimSpec::workload(
                name,
                MachineSpec::Misp(TopologySpec::Uniprocessor { ams: 3 }),
                workers,
            )
            .with_trace(true)
            .with_metrics_interval(250_000),
        ));
        grid.push(RunSpec::sim(
            format!("{name}/smp"),
            SimSpec::workload(name, MachineSpec::Smp { cores: 4 }, workers)
                .with_trace(true)
                .with_metrics_interval(250_000),
        ));
    }

    let (serial, serial_artifacts) = run_grid_with_artifacts(
        &grid,
        &SweepOptions {
            threads: 1,
            verify: VerifyMode::Off,
        },
    )
    .unwrap();
    let (parallel, parallel_artifacts) = run_grid_with_artifacts(
        &grid,
        &SweepOptions {
            threads: 8,
            verify: VerifyMode::Full,
        },
    )
    .unwrap();

    assert_eq!(
        serial.to_canonical_json().unwrap(),
        parallel.to_canonical_json().unwrap(),
        "results with observability summaries must stay byte-identical"
    );
    for (record, (a, b)) in serial
        .records
        .iter()
        .zip(serial_artifacts.iter().zip(&parallel_artifacts))
    {
        let id = &record.id;
        let ta = a.trace.as_ref().expect("serial trace");
        let tb = b.trace.as_ref().expect("parallel trace");
        assert_eq!(ta.digest, tb.digest, "{id}: trace digest");
        assert_eq!(ta.events, tb.events, "{id}: trace events");
        assert_eq!(
            artifacts::trace_json(ta),
            artifacts::trace_json(tb),
            "{id}: Perfetto export bytes"
        );
        let ma = a.metrics.as_ref().expect("serial metrics");
        let mb = b.metrics.as_ref().expect("parallel metrics");
        assert_eq!(ma.digest, mb.digest, "{id}: metrics digest");
        assert_eq!(ma.samples, mb.samples, "{id}: metrics samples");
        assert!(!ma.samples.is_empty(), "{id}: sampler must have fired");
    }
    assert_eq!(
        artifacts::metrics_jsonl(&serial.records, &serial_artifacts).unwrap(),
        artifacts::metrics_jsonl(&parallel.records, &parallel_artifacts).unwrap(),
        "interval-metrics JSONL stream must be byte-identical across thread counts"
    );
}

#[test]
fn fig4_grid_sweeps_identically_at_different_thread_counts() {
    let grid = grids::fig4();
    let two = run_grid(
        &grid,
        &SweepOptions {
            threads: 2,
            verify: VerifyMode::Off,
        },
    )
    .unwrap();
    let eight = run_grid(
        &grid,
        &SweepOptions {
            threads: 8,
            verify: VerifyMode::Off,
        },
    )
    .unwrap();
    assert_eq!(
        two.to_canonical_json().unwrap(),
        eight.to_canonical_json().unwrap()
    );
}
