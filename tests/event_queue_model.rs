//! Model-based test of the radix-heap event queue.
//!
//! The reference model is a plain `BinaryHeap<ScheduledEvent>` (whose `Ord`
//! is reversed so it pops earliest-first) with *lazy deletion* for the two
//! superseding kinds: the model remembers the latest seqno pushed for each
//! `(kind, sequencer)` slot and skips stale entries on pop.  Both structures
//! assign seqnos sequentially per push, so a correct radix heap must pop the
//! byte-identical `(time, seqno, event)` sequence for any monotone schedule
//! of pushes, supersedes and pops.

// The reference model is deliberately allowed a std HashMap (clippy.toml
// bans it in shipping code): the test never iterates it and determinism of
// the *model* is irrelevant to the property being checked.
#![allow(clippy::disallowed_types)]

use misp::sim::{Event, EventQueue, ScheduledEvent};
use misp::types::{Cycles, SequencerId};
use proptest::prelude::*;
use std::collections::{BinaryHeap, HashMap};

/// The reference: comparison heap + lazy supersede.
#[derive(Default)]
struct ModelQueue {
    heap: BinaryHeap<ScheduledEvent>,
    /// Latest live seqno per supersede slot `(kind_bit, sequencer)`.
    live: HashMap<(u8, u32), u64>,
    next_seqno: u64,
}

impl ModelQueue {
    fn slot(event: &Event) -> Option<(u8, u32)> {
        match event {
            Event::SeqReady { seq, .. } => Some((0, seq.as_usize() as u32)),
            Event::StallEnd { seq } => Some((1, seq.as_usize() as u32)),
            Event::TimerTick { .. } | Event::StallEndGroup { .. } | Event::Sample => None,
        }
    }

    fn push(&mut self, time: Cycles, event: Event) {
        let seqno = self.next_seqno;
        self.next_seqno += 1;
        if let Some(slot) = Self::slot(&event) {
            self.live.insert(slot, seqno);
        }
        self.heap.push(ScheduledEvent { time, seqno, event });
    }

    fn pop(&mut self) -> Option<ScheduledEvent> {
        while let Some(e) = self.heap.pop() {
            match Self::slot(&e.event) {
                Some(slot) if self.live.get(&slot) != Some(&e.seqno) => continue,
                Some(slot) => {
                    self.live.remove(&slot);
                    return Some(e);
                }
                None => return Some(e),
            }
        }
        None
    }
}

/// One scripted queue operation, decoded from a generated tuple.
fn apply(
    queue: &mut EventQueue,
    model: &mut ModelQueue,
    now: &mut u64,
    (op, delta, seq, extra): (u64, u64, u64, u64),
) {
    let seq_id = SequencerId::new(seq as u32);
    let event = match op {
        0..=2 => Event::SeqReady {
            seq: seq_id,
            generation: extra,
        },
        3 => Event::TimerTick {
            cpu: seq_id,
            tick: extra + 1,
        },
        4 => Event::StallEnd { seq: seq_id },
        5 => Event::StallEndGroup {
            base: seq as u32,
            mask: (extra as u32) | 1,
        },
        6 => Event::Sample,
        _ => {
            // Pop from both; the popped entries must be identical and time
            // must never go backwards.
            let a = queue.pop();
            let b = model.pop();
            prop_assert_eq!(a, b, "pop mismatch at now={}", now);
            if let Some(e) = a {
                prop_assert!(e.time.as_u64() >= *now, "time went backwards");
                *now = e.time.as_u64();
            }
            return;
        }
    };
    // Pushes are always at or after the last popped time (the engine's
    // monotonicity invariant the radix heap relies on).
    let time = Cycles::new(*now + delta);
    queue.push(time, event);
    model.push(time, event);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any monotone schedule mixing all four event kinds, supersedes and
    /// pops, the radix heap pops the exact `(time, seqno, event)` sequence of
    /// the comparison-heap reference — including the full drain at the end.
    #[test]
    fn radix_heap_matches_binary_heap_reference(
        ops in proptest::collection::vec(
            (0u64..9, 0u64..(1 << 40), 0u64..6, 0u64..64),
            0..200,
        )
    ) {
        let mut queue = EventQueue::new();
        let mut model = ModelQueue::default();
        let mut now = 0u64;
        for op in ops {
            apply(&mut queue, &mut model, &mut now, op);
            prop_assert_eq!(queue.len(), model_live_len(&model), "live-entry count diverged");
        }
        // Drain: every remaining live event pops in identical order.
        loop {
            let a = queue.pop();
            let b = model.pop();
            prop_assert_eq!(a, b, "drain mismatch");
            if a.is_none() {
                break;
            }
        }
        prop_assert!(queue.is_empty());
    }
}

/// Number of live (non-superseded) entries in the model.
fn model_live_len(model: &ModelQueue) -> usize {
    model
        .heap
        .iter()
        .filter(|e| match ModelQueue::slot(&e.event) {
            Some(slot) => model.live.get(&slot) == Some(&e.seqno),
            None => true,
        })
        .count()
}
