//! Model-based tests of the fleet layer.
//!
//! Two promises are pinned here.  First, the deterministic cross-machine
//! [`Mailbox`] delivers exactly the sequence a single merged reference queue
//! would: messages sorted by `(deliver_at, seqno)`, restricted to each
//! machine, no matter how the conservative synchronizer slices the run into
//! windows.  Second, the fleet is a conservative *extension* of the
//! single-machine engine: a fleet of one — and every machine of a larger
//! fleet that receives no mail — replays the solo engine byte-for-byte,
//! down to the event-log digest.

use misp::core::{MispMachine, MispTopology};
use misp::isa::ProgramLibrary;
use misp::sim::{Event, FleetEngine, FleetReport, Mailbox, SimConfig};
use misp::types::{Cycles, MachineId};
use misp::workloads::{catalog, Run};
use proptest::prelude::*;

/// One scripted mailbox operation, decoded from a generated tuple.
#[derive(Debug, Clone)]
enum Op {
    /// Post a message to machine `to % machines`, `gap` cycles past the
    /// highest horizon drained so far (the conservative invariant: an
    /// in-window send can only deliver at or beyond the window's horizon).
    Post { to: u32, gap: u64 },
    /// Drain machine `machine % machines` up to a horizon `step` cycles past
    /// the previous one.
    Drain { machine: u32, step: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..4, 0u64..500).prop_map(|(to, gap)| Op::Post { to, gap }),
        (0u32..4, 1u64..500).prop_map(|(machine, step)| Op::Drain { machine, step }),
    ]
}

proptest! {
    /// Replays a random post/drain script against the mailbox and against a
    /// single merged reference queue (all messages sorted by
    /// `(deliver_at, seqno)`): every machine must observe exactly the
    /// reference subsequence addressed to it, for 2–4 machines and any
    /// window slicing.
    #[test]
    fn mailbox_delivery_order_matches_a_single_merged_reference_queue(
        input in (2usize..5, proptest::collection::vec(op_strategy(), 1..120))
    ) {
        let (machines, ops) = input;
        let mut mailbox = Mailbox::with_capacity(16);
        // The reference: one merged queue of (deliver_at, seqno, to).
        let mut reference: Vec<(u64, u64, usize)> = Vec::new();
        let mut delivered: Vec<Vec<(u64, u64)>> = vec![Vec::new(); machines];
        let mut floor = 0u64; // highest horizon drained so far
        let mut buffer = Vec::new();

        for op in &ops {
            match *op {
                Op::Post { to, gap } => {
                    let to = to as usize % machines;
                    let at = floor + gap;
                    let seqno = mailbox.post(
                        MachineId::new(0),
                        MachineId::new(to as u32),
                        Cycles::new(at),
                        Event::Sample,
                    );
                    reference.push((at, seqno, to));
                }
                Op::Drain { machine, step } => {
                    let machine = machine as usize % machines;
                    floor += step;
                    mailbox.take_due(
                        MachineId::new(machine as u32),
                        Some(Cycles::new(floor)),
                        &mut buffer,
                    );
                    delivered[machine]
                        .extend(buffer.iter().map(|m| (m.deliver_at.as_u64(), m.seqno)));
                }
            }
        }
        // Final unbounded drain, as the synchronizer does once a machine has
        // no live neighbours left.
        for (machine, seen) in delivered.iter_mut().enumerate() {
            mailbox.take_due(MachineId::new(machine as u32), None, &mut buffer);
            seen.extend(buffer.iter().map(|m| (m.deliver_at.as_u64(), m.seqno)));
        }
        prop_assert!(mailbox.is_empty(), "every message is delivered exactly once");

        reference.sort_unstable_by_key(|&(at, seqno, _)| (at, seqno));
        for (machine, seen) in delivered.iter().enumerate() {
            let expected: Vec<(u64, u64)> = reference
                .iter()
                .filter(|&&(_, _, to)| to == machine)
                .map(|&(at, seqno, _)| (at, seqno))
                .collect();
            prop_assert_eq!(
                seen,
                &expected,
                "machine {} delivery order diverged from the merged reference queue",
                machine
            );
        }
    }
}

/// Builds the MISP uniprocessor machine the runner would for `workload`,
/// ready to drop into a fleet.
fn misp_machine(workload: &misp::workloads::Workload) -> MispMachine {
    let topology = MispTopology::uniprocessor(7).unwrap();
    let mut library = ProgramLibrary::new();
    let scheduler = workload.build(&mut library, 8);
    let mut machine = MispMachine::new(topology, SimConfig::default(), library);
    machine.add_process(workload.name(), Box::new(scheduler), Some(0));
    machine
}

/// A fleet of one replays the single-machine engine exactly: same completion
/// time, same event-log digest — which is also what keeps every pre-fleet
/// golden byte-identical.
#[test]
fn a_fleet_of_one_reproduces_the_single_machine_engine() {
    for workload in catalog::all().iter().take(4) {
        let solo = Run::workload(workload)
            .topology(MispTopology::uniprocessor(7).unwrap())
            .execute()
            .unwrap();

        let mut fleet = FleetEngine::new(Cycles::new(200_000));
        fleet.add_machine(misp_machine(workload).into_sim_machine());
        let report = fleet.run_fleet().unwrap();

        let name = workload.name();
        assert_eq!(report.reports.len(), 1, "{name}");
        assert_eq!(
            report.reports[0].total_cycles, solo.total_cycles,
            "{name}: fleet-of-one completion time"
        );
        assert_eq!(
            report.reports[0].log_digest, solo.log_digest,
            "{name}: fleet-of-one event-log digest"
        );
        assert_eq!(
            report.fleet_digest,
            FleetReport::new(vec![solo.clone()]).fleet_digest,
            "{name}: fleet digest is a pure function of the member digests"
        );
    }
}

/// Machines that exchange no mail are untouched by the synchronizer: every
/// member of a mixed 3-machine fleet finishes with the digest of its solo
/// run, regardless of how the conservative windows interleaved the shards.
#[test]
fn independent_fleet_members_replay_their_solo_runs() {
    let picks: Vec<_> = catalog::all().into_iter().take(3).collect();
    let solos: Vec<_> = picks
        .iter()
        .map(|w| {
            Run::workload(w)
                .topology(MispTopology::uniprocessor(7).unwrap())
                .execute()
                .unwrap()
        })
        .collect();

    let mut fleet = FleetEngine::new(Cycles::new(1_000));
    for w in &picks {
        fleet.add_machine(misp_machine(w).into_sim_machine());
    }
    let report = fleet.run_fleet().unwrap();

    assert_eq!(report.reports.len(), picks.len());
    for ((w, solo), fleet_report) in picks.iter().zip(&solos).zip(&report.reports) {
        assert_eq!(
            fleet_report.log_digest,
            solo.log_digest,
            "{}: windowed execution must not perturb an isolated machine",
            w.name()
        );
        assert_eq!(
            fleet_report.total_cycles,
            solo.total_cycles,
            "{}: completion time",
            w.name()
        );
    }
    assert_eq!(
        report.total_cycles(),
        solos.iter().map(|s| s.total_cycles).max().unwrap()
    );
}
