//! Golden-figure regression tests.
//!
//! Each test re-runs one named experiment grid through the parallel sweep
//! harness and diffs the aggregated results document byte-for-byte against
//! the golden JSON committed under `tests/goldens/`.  Any change to the
//! engine, the cost model, the workload calibration or the results schema
//! that moves a figure shows up here as a readable diff.
//!
//! To regenerate a golden after an intentional change:
//!
//! ```text
//! cargo run --release -p misp-harness --bin sweep -- <grid> --out tests/goldens/<grid>.json
//! ```

use misp::harness::{grids, run_grid, SweepOptions, VerifyMode};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.json"))
}

/// Points to the first differing line so a golden mismatch reads like a
/// diff hunk instead of two 40 kB strings.
fn first_divergence(expected: &str, actual: &str) -> String {
    for (number, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!(
                "first difference at line {}:\n  golden: {e}\n  actual: {a}",
                number + 1
            );
        }
    }
    format!(
        "documents diverge in length: golden {} lines, actual {} lines",
        expected.lines().count(),
        actual.lines().count()
    )
}

fn check_grid(name: &str) {
    check_grid_with(name, VerifyMode::SpotCheck);
}

fn check_grid_with(name: &str, verify: VerifyMode) {
    let grid = grids::by_name(name).expect("named grid exists");
    let options = SweepOptions { threads: 2, verify };
    let results = run_grid(&grid, &options).expect("sweep succeeds");
    let actual = results.to_canonical_json().expect("serializable");
    let path = golden_path(name);
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("could not read golden {}: {e}", path.display()));
    assert!(
        expected == actual,
        "grid {name} no longer matches its golden ({}).\n{}\n\
         If the change is intentional, regenerate with:\n  \
         cargo run --release -p misp-harness --bin sweep -- {name} --out tests/goldens/{name}.json",
        path.display(),
        first_divergence(&expected, &actual)
    );
}

#[test]
fn fig4_matches_golden() {
    check_grid("fig4");
}

#[test]
fn fig5_matches_golden() {
    check_grid("fig5");
}

#[test]
fn fig6_matches_golden() {
    check_grid("fig6");
}

#[test]
fn table1_matches_golden() {
    check_grid("table1");
}

#[test]
fn table2_matches_golden() {
    check_grid("table2");
}

/// The cache-enabled grid is checked under the harness's strictest mode —
/// every parallel record re-verified against a serial re-execution — in the
/// same sweep that is diffed against the golden (the cache hierarchy adds
/// per-run mutable state, so it gets the full treatment).
#[test]
fn cache_sensitivity_matches_golden_under_full_verification() {
    check_grid_with("cache_sensitivity", VerifyMode::Full);
}

/// The open-loop scenario grid gets the same strict treatment: every
/// parallel record is re-verified serially in the sweep that is diffed
/// against the golden.  This pins the arrival streams, queue admission,
/// latency percentiles and the schema-v3 record fields byte-for-byte.
#[test]
fn service_load_matches_golden_under_full_verification() {
    check_grid_with("service_load", VerifyMode::Full);
}

/// The fleet grid — conservative multi-machine synchronization, the seeded
/// load balancer and the schema-v5 per-machine records — is pinned under
/// full verification: every parallel record re-verified serially in the
/// sweep that is diffed against the golden.
#[test]
fn fleet_service_matches_golden_under_full_verification() {
    check_grid_with("fleet_service", VerifyMode::Full);
}

/// The goldens themselves must carry the schema version the harness emits,
/// so a schema bump forces a deliberate regeneration of every golden.
#[test]
fn goldens_carry_the_current_schema_version() {
    for name in [
        "fig4",
        "fig5",
        "fig6",
        "table1",
        "table2",
        "cache_sensitivity",
        "service_load",
        "fleet_service",
    ] {
        let text = std::fs::read_to_string(golden_path(name)).expect("golden readable");
        let needle = format!("\"schema_version\": {}", misp::harness::SCHEMA_VERSION);
        assert!(
            text.contains(&needle),
            "golden {name} does not declare schema version {}",
            misp::harness::SCHEMA_VERSION
        );
    }
}
