//! Integration tests for the multiprocessor / multi-programming behaviour the
//! paper evaluates in Section 5.4 (Figure 7).

use misp::core::{MispMachine, MispTopology};
use misp::isa::ProgramLibrary;
use misp::mem::AccessPattern;
use misp::sim::SimConfig;
use misp::smp::SmpMachine;
use misp::types::Cycles;
use misp::workloads::{competitor, LocalityProfile, Suite, Workload, WorkloadParams};

fn task_queue_workload() -> Workload {
    Workload::new(
        "queue-app",
        Suite::Rms,
        WorkloadParams {
            total_work: 1_600_000_000,
            serial_fraction: 0.02,
            main_pages: 10,
            worker_pages: 4,
            chunks_per_worker: 10,
            main_syscalls: 0,
            worker_syscalls: 0,
            access_pattern: AccessPattern::Sequential,
            lock_contention: false,
            locality: LocalityProfile::Revisit,
        },
    )
}

/// Runs the shredded application on `topology` with `competitors`
/// single-threaded processes, returning its completion time.
fn run_misp(topology: &MispTopology, competitors: usize) -> Cycles {
    let w = task_queue_workload();
    let mut library = ProgramLibrary::new();
    // Many small shreds so the work queue can balance around slow sequencers.
    let scheduler = w.build(&mut library, 64);
    let programs: Vec<_> = (0..competitors)
        .map(|i| competitor::competitor_program(&mut library, i, 4_000_000_000))
        .collect();
    let mut machine = MispMachine::new(topology.clone(), SimConfig::default(), library);
    let app = machine.add_process("app", Box::new(scheduler), Some(0));
    for proc_idx in 1..topology.processors().len() {
        if !topology.processors()[proc_idx].ams().is_empty() {
            machine.add_thread(app, Some(proc_idx));
        }
    }
    for p in programs {
        machine.add_process("bg", Box::new(competitor::competitor_runtime(p)), None);
    }
    machine.set_measured(vec![app]);
    machine.run().unwrap().total_cycles
}

fn run_smp(cores: usize, competitors: usize) -> Cycles {
    let w = task_queue_workload();
    let mut library = ProgramLibrary::new();
    let scheduler = w.build(&mut library, 64);
    let programs: Vec<_> = (0..competitors)
        .map(|i| competitor::competitor_program(&mut library, i, 4_000_000_000))
        .collect();
    let mut machine = SmpMachine::new(cores, SimConfig::default(), library);
    let app = machine.add_process("app", Box::new(scheduler), Some(0));
    for core in 1..cores {
        machine.add_thread(app, Some(core));
    }
    for p in programs {
        machine.add_process("bg", Box::new(competitor::competitor_runtime(p)), None);
    }
    machine.set_measured(vec![app]);
    machine.run().unwrap().total_cycles
}

#[test]
fn single_misp_processor_loses_half_its_throughput_to_one_competitor() {
    let topo = MispTopology::config_1x8();
    let unloaded = run_misp(&topo, 0);
    let loaded = run_misp(&topo, 1);
    let retained = unloaded.as_f64() / loaded.as_f64();
    assert!(
        (0.40..=0.62).contains(&retained),
        "1x8 should retain roughly half its throughput with one competitor \
         sharing the only OS-visible CPU, got {retained:.2}"
    );
}

#[test]
fn more_misp_processors_degrade_more_gracefully() {
    let loss = |topology: &MispTopology| {
        let unloaded = run_misp(topology, 0);
        let loaded = run_misp(topology, 1);
        unloaded.as_f64() / loaded.as_f64()
    };
    let one = loss(&MispTopology::config_1x8());
    let two = loss(&MispTopology::config_2x4());
    let four = loss(&MispTopology::config_4x2());
    assert!(
        two > one + 0.05 && four > two + 0.03,
        "retained throughput must improve with more MISP processors: 1x8={one:.2}, 2x4={two:.2}, 4x2={four:.2}"
    );
}

#[test]
fn dedicated_single_sequencer_cpus_insulate_the_shredded_app() {
    // 1x4+4: the competitor lands on an empty single-sequencer processor, so
    // the shredded application keeps its whole MISP processor.
    let topo = MispTopology::config_uneven(3, 4);
    let unloaded = run_misp(&topo, 0);
    let loaded = run_misp(&topo, 1);
    let retained = unloaded.as_f64() / loaded.as_f64();
    assert!(
        retained > 0.97,
        "an uneven configuration should fully insulate the shredded app, got {retained:.2}"
    );
}

#[test]
fn smp_degrades_most_gracefully_under_load() {
    let unloaded = run_smp(8, 0);
    let loaded = run_smp(8, 1);
    let retained = unloaded.as_f64() / loaded.as_f64();
    assert!(
        retained > 0.75,
        "the SMP work-queue application should lose only a fraction of one core, got {retained:.2}"
    );
    // And SMP under load beats the single MISP processor under load.
    let misp_retained = run_misp(&MispTopology::config_1x8(), 0).as_f64()
        / run_misp(&MispTopology::config_1x8(), 1).as_f64();
    assert!(retained > misp_retained);
}

#[test]
fn context_switches_save_and_restore_ams_state() {
    // With a competitor sharing the OMS, the shredded app's AMS state is
    // repeatedly saved and restored; the run must still complete with the
    // correct fault accounting (no lost or duplicated work).
    let topo = MispTopology::config_1x8();
    let w = task_queue_workload();
    let mut library = ProgramLibrary::new();
    let scheduler = w.build(&mut library, 64);
    let bg = competitor::competitor_program(&mut library, 0, 4_000_000_000);
    let mut machine = MispMachine::new(topo, SimConfig::default(), library);
    let app = machine.add_process("app", Box::new(scheduler), Some(0));
    machine.add_process("bg", Box::new(competitor::competitor_runtime(bg)), Some(0));
    machine.set_measured(vec![app]);
    let report = machine.run().unwrap();
    assert!(
        report.stats.context_switches > 10,
        "time slicing must occur"
    );
    let faults = report.stats.oms_events.page_faults + report.stats.ams_events.page_faults;
    // 10 main pages + 64 workers x 4 pages + 8 competitor pages.
    assert_eq!(faults, 10 + 64 * 4 + 8);
}
