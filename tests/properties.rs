//! Property-based integration tests: invariants that must hold for *any*
//! workload shape, checked with proptest over randomized parameters.

use misp::core::MispMachine;
use misp::core::{MispTopology, RingPolicy};
use misp::isa::ProgramLibrary;
use misp::mem::AccessPattern;
use misp::os::TimerConfig;
use misp::sim::SimConfig;
use misp::types::{CostModel, Cycles, SignalCost};
use misp::workloads::{LocalityProfile, Machine, Run, Suite, Workload, WorkloadParams};
use proptest::prelude::*;

fn arbitrary_params() -> impl Strategy<Value = WorkloadParams> {
    (
        50_000_000u64..400_000_000,
        0.0f64..0.3,
        0u64..64,
        0u64..16,
        1u64..16,
        0u64..6,
        prop_oneof![
            Just(AccessPattern::Sequential),
            (1u64..8).prop_map(|stride| AccessPattern::Strided { stride }),
            any::<u64>().prop_map(|seed| AccessPattern::Shuffled { seed }),
        ],
        any::<bool>(),
    )
        .prop_map(
            |(
                total_work,
                serial_fraction,
                main_pages,
                worker_pages,
                chunks,
                syscalls,
                pattern,
                contention,
            )| {
                WorkloadParams {
                    total_work,
                    serial_fraction,
                    main_pages,
                    worker_pages,
                    chunks_per_worker: chunks,
                    main_syscalls: syscalls,
                    worker_syscalls: 0,
                    access_pattern: pattern,
                    lock_contention: contention,
                    locality: LocalityProfile::Revisit,
                }
            },
        )
}

fn quick_config() -> SimConfig {
    SimConfig {
        timer: TimerConfig::new(Cycles::new(3_000_000), 10),
        ..SimConfig::default()
    }
}

/// Asserts that two reports agree on everything the results schema can see:
/// completion times, the full statistics block and the event-log digest.
fn assert_identical(a: &misp::sim::SimReport, b: &misp::sim::SimReport, context: &str) {
    assert_eq!(a.total_cycles, b.total_cycles, "{context}: total cycles");
    assert_eq!(a.completions, b.completions, "{context}: completions");
    assert_eq!(a.stats, b.stats, "{context}: statistics");
    assert_eq!(a.log_digest, b.log_digest, "{context}: log digest");
}

/// Runs `workload` on `machine` with 8 workers under `config`.
fn run(workload: &Workload, machine: Machine, config: SimConfig) -> misp::sim::SimReport {
    Run::workload(workload)
        .machine(machine)
        .config(config)
        .execute()
        .unwrap()
}

/// Runs `workload` on `machine` with 4 workers under `config`.
fn run4(workload: &Workload, machine: Machine, config: SimConfig) -> misp::sim::SimReport {
    Run::workload(workload)
        .machine(machine)
        .config(config)
        .workers(4)
        .execute()
        .unwrap()
}

/// The macro-step fast path must be invisible: every catalog workload, with
/// the cache model off and on, produces identical statistics and event-log
/// digests whether batching is enabled (the default) or force-disabled (the
/// event-per-operation reference loop).
#[test]
fn macro_stepping_is_byte_identical_for_every_catalog_workload() {
    use misp::cache::CacheConfig;
    let topo = MispTopology::uniprocessor(7).unwrap();
    for cache in [CacheConfig::disabled(), CacheConfig::enabled_default()] {
        let base = quick_config().with_cache(cache);
        let batched = SimConfig {
            batch: true,
            ..base
        };
        let reference = SimConfig {
            batch: false,
            ..base
        };
        for w in misp::workloads::catalog::all() {
            let context = format!(
                "{} (cache {})",
                w.name(),
                if cache.enabled { "on" } else { "off" }
            );
            let on = run(&w, Machine::Misp(topo.clone()), batched);
            let off = run(&w, Machine::Misp(topo.clone()), reference);
            assert_identical(&on, &off, &format!("{context} on MISP"));

            let on = run(&w, Machine::smp(8), batched);
            let off = run(&w, Machine::smp(8), reference);
            assert_identical(&on, &off, &format!("{context} on SMP"));

            let on = run(&w, Machine::Serial, batched);
            let off = run(&w, Machine::Serial, reference);
            assert_identical(&on, &off, &format!("{context} serial"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any workload completes on MISP, is deterministic, and never beats the
    /// ideal linear speedup over its own serial run.
    #[test]
    fn random_workloads_complete_deterministically(params in arbitrary_params()) {
        let w = Workload::new("prop", Suite::Rms, params);
        let topo = MispTopology::uniprocessor(3).unwrap();
        let a = run4(&w, Machine::Misp(topo.clone()), quick_config());
        let b = run4(&w, Machine::Misp(topo.clone()), quick_config());
        prop_assert_eq!(a.total_cycles, b.total_cycles);
        prop_assert_eq!(a.stats.total_serializing_events(), b.stats.total_serializing_events());

        let serial = run4(&w, Machine::Serial, quick_config());
        prop_assert!(serial.total_cycles >= a.total_cycles.saturating_sub(Cycles::new(1_000)) || serial.total_cycles >= a.total_cycles,
            "parallel must not exceed serial by more than rounding");
        let speedup = serial.total_cycles.as_f64() / a.total_cycles.as_f64();
        prop_assert!(speedup <= 4.05, "speedup {} exceeds sequencer count", speedup);
    }

    /// Macro-stepping is byte-identical on arbitrary workload shapes too —
    /// including with fine-grained logging enabled, where the digest covers
    /// every individual record and its timestamp.
    #[test]
    fn macro_stepping_is_byte_identical_on_random_workloads(
        input in (arbitrary_params(), any::<bool>())
    ) {
        let (params, fine_log) = input;
        let w = Workload::new("prop", Suite::Rms, params);
        let topo = MispTopology::uniprocessor(3).unwrap();
        let base = SimConfig { fine_log, ..quick_config() };
        let batched = SimConfig { batch: true, ..base };
        let reference = SimConfig { batch: false, ..base };

        let on = run4(&w, Machine::Misp(topo.clone()), batched);
        let off = run4(&w, Machine::Misp(topo.clone()), reference);
        prop_assert_eq!(on.total_cycles, off.total_cycles);
        prop_assert_eq!(&on.completions, &off.completions);
        prop_assert_eq!(&on.stats, &off.stats);
        prop_assert_eq!(on.log_digest, off.log_digest);

        let on = run4(&w, Machine::Serial, batched);
        let off = run4(&w, Machine::Serial, reference);
        prop_assert_eq!(on.total_cycles, off.total_cycles);
        prop_assert_eq!(&on.stats, &off.stats);
        prop_assert_eq!(on.log_digest, off.log_digest);
    }

    /// The total number of page faults equals the number of distinct pages
    /// touched, independent of machine and access pattern.
    #[test]
    fn fault_count_is_exactly_the_working_set(params in arbitrary_params()) {
        let w = Workload::new("prop", Suite::Rms, params);
        let topo = MispTopology::uniprocessor(3).unwrap();
        let report = run4(&w, Machine::Misp(topo.clone()), quick_config());
        let expected = params.main_pages + params.worker_pages * 4;
        let measured = report.stats.oms_events.page_faults + report.stats.ams_events.page_faults;
        prop_assert_eq!(measured, expected);
        let smp = run4(&w, Machine::smp(4), quick_config());
        let smp_faults = smp.stats.oms_events.page_faults + smp.stats.ams_events.page_faults;
        prop_assert_eq!(smp_faults, expected);
    }

    /// Cheaper signaling never makes a workload slower, and the speculative
    /// ring policy never loses to the suspend-all policy.
    #[test]
    fn overheads_are_monotone(params in arbitrary_params()) {
        let w = Workload::new("prop", Suite::Rms, params);
        let topo = MispTopology::uniprocessor(3).unwrap();
        let with_signal = |signal: SignalCost| {
            let cfg = quick_config().with_costs(CostModel::builder().signal(signal).build());
            run4(&w, Machine::Misp(topo.clone()), cfg).total_cycles
        };
        let ideal = with_signal(SignalCost::Ideal);
        let microcode = with_signal(SignalCost::Microcode5000);
        prop_assert!(ideal <= microcode);

        // Ring-policy ablation: speculative pass-through can only help.
        let run_policy = |policy: RingPolicy| {
            let mut library = ProgramLibrary::new();
            let scheduler = w.build(&mut library, 4);
            let mut machine = MispMachine::new(topo.clone(), quick_config(), library);
            machine.engine_mut().platform_mut().set_policy(policy);
            machine.add_process("prop", Box::new(scheduler), Some(0));
            machine.run().unwrap().total_cycles
        };
        let suspend_all = run_policy(RingPolicy::SuspendAll);
        let speculative = run_policy(RingPolicy::Speculative);
        prop_assert!(speculative <= suspend_all);
    }
}
