//! Integration tests of the open-loop request-serving scenarios: common
//! random numbers across the sweep harness, the service-metrics section of
//! the results schema, and order-independence of histogram merging.

use misp::harness::{grids, run_grid, SweepOptions, VerifyMode};
use misp::types::Histogram;
use misp::workloads::scenario;
use proptest::prelude::*;

fn sweep_service_load() -> misp::harness::SweepResults {
    run_grid(
        &grids::service_load(),
        &SweepOptions {
            threads: 4,
            verify: VerifyMode::SpotCheck,
        },
    )
    .unwrap()
}

/// Every paired record of the service grid replays the identical customer
/// stream: same scenario, same offered load, same admission/drop totals.
/// This is the common-random-numbers contract surfaced through the harness.
#[test]
fn paired_service_records_share_the_customer_stream() {
    let results = sweep_service_load();
    let pairs: Vec<(&str, &str)> = vec![
        ("poisson/load30/misp", "poisson/load30/smp"),
        ("poisson/load60/misp", "poisson/load60/smp"),
        ("poisson/load90/misp", "poisson/load90/smp"),
        ("bursty/load60/misp", "bursty/load60/smp"),
        ("diurnal/load60/misp", "diurnal/load60/smp"),
        ("poisson/load10/pool7", "poisson/load10/pool1"),
    ];
    for (a_id, b_id) in pairs {
        let a = results.record(a_id).unwrap();
        let b = results.record(b_id).unwrap();
        assert_eq!(a.scenario, b.scenario, "{a_id} vs {b_id}");
        assert_eq!(a.offered_load, b.offered_load, "{a_id} vs {b_id}");
        assert_eq!(a.seed, b.seed, "{a_id} vs {b_id}: paired seeds");
        let a_svc = a.sim.as_ref().unwrap().service.as_ref().unwrap();
        let b_svc = b.sim.as_ref().unwrap().service.as_ref().unwrap();
        assert_eq!(
            a_svc.admitted + a_svc.dropped,
            b_svc.admitted + b_svc.dropped,
            "{a_id} vs {b_id}: the offered stream must be identical"
        );
    }
}

/// Scenario records carry the v3 metadata and an ordered percentile ladder;
/// closed-loop grids stay free of the service section.
#[test]
fn service_metrics_are_well_formed_and_scoped_to_scenarios() {
    let results = sweep_service_load();
    assert_eq!(results.run_count, 12);
    for record in &results.records {
        assert!(record.scenario.is_some(), "{}", record.id);
        assert!(record.offered_load.is_some(), "{}", record.id);
        assert!(record.workload.is_none(), "{}", record.id);
        let sim = record.sim.as_ref().unwrap();
        let svc = sim.service.as_ref().expect("scenario runs carry service");
        assert!(svc.completed > 0, "{}", record.id);
        assert!(
            svc.latency_p50 <= svc.latency_p95
                && svc.latency_p95 <= svc.latency_p99
                && svc.latency_p99 <= svc.latency_p999,
            "{}: percentile ladder must be ordered",
            record.id
        );
        assert!(svc.throughput_per_gcycle > 0.0, "{}", record.id);
    }

    let closed_loop = run_grid(
        &grids::table1(),
        &SweepOptions {
            threads: 2,
            verify: VerifyMode::Off,
        },
    )
    .unwrap();
    for record in &closed_loop.records {
        assert!(record.scenario.is_none(), "{}", record.id);
        assert!(record.offered_load.is_none(), "{}", record.id);
        if let Some(sim) = &record.sim {
            assert!(sim.service.is_none(), "{}", record.id);
        }
    }
}

/// The single-gate pool pays for its shape where queueing theory says it
/// must: with the identical lightly-loaded stream, M/M/1 tail latency
/// dominates M/M/7.
#[test]
fn narrow_pool_inflates_tail_latency_on_the_same_stream() {
    let results = sweep_service_load();
    let wide = results.sim("poisson/load10/pool7").unwrap();
    let narrow = results.sim("poisson/load10/pool1").unwrap();
    let wide_svc = wide.service.as_ref().unwrap();
    let narrow_svc = narrow.service.as_ref().unwrap();
    assert!(
        narrow_svc.latency_p99 > wide_svc.latency_p99,
        "single server must queue: p99 {} vs {}",
        narrow_svc.latency_p99,
        wide_svc.latency_p99
    );
}

/// The arrival generator is a pure function of (scenario parameters, seed) —
/// rebuilding the scenario from the catalog gives the identical stream, and
/// distinct seeds give distinct streams.
#[test]
fn arrival_streams_are_reproducible_from_the_catalog() {
    for name in ["poisson", "bursty", "diurnal"] {
        let a = scenario::by_name(name).unwrap().stream(2026);
        let b = scenario::by_name(name).unwrap().stream(2026);
        assert_eq!(a, b, "{name}: same seed, same stream");
        let c = scenario::by_name(name).unwrap().stream(2027);
        assert_ne!(a, c, "{name}: different seed, different stream");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Histogram merging is order-independent: recording all samples into
    /// one histogram, or partitioning them arbitrarily and folding the
    /// partial histograms in forward or reverse order, produces identical
    /// structures.  The parallel sweep harness relies on exactly this to
    /// keep scenario records byte-identical at any thread count.
    #[test]
    fn histogram_merge_is_order_independent(
        input in (
            proptest::collection::vec(0u64..1_000_000_000, 0..200),
            1usize..8,
        )
    ) {
        let (samples, parts) = input;
        let mut reference = Histogram::new();
        for &v in &samples {
            reference.record(v);
        }

        // Partition round-robin into `parts` histograms.
        let mut partials = vec![Histogram::new(); parts];
        for (i, &v) in samples.iter().enumerate() {
            partials[i % parts].record(v);
        }

        let mut forward = Histogram::new();
        for p in &partials {
            forward.merge(p);
        }
        let mut reverse = Histogram::new();
        for p in partials.iter().rev() {
            reverse.merge(p);
        }

        prop_assert_eq!(&forward, &reference);
        prop_assert_eq!(&reverse, &reference);
        prop_assert_eq!(forward.percentiles(), reference.percentiles());
    }
}
