//! Property tests for the ShredLib synchronization primitives.
//!
//! A randomized cooperative executor drives random shred counts through the
//! mutex + work-queue + barrier pattern every shredded workload uses: each
//! shred repeatedly acquires the mutex, completes one chunk of work,
//! releases, and finally arrives at the barrier.  The schedule — which ready
//! shred runs next, and whether it is taken in policy order or stolen from
//! the middle of the queue — is randomized per case.  For every schedule:
//!
//! * the system terminates (no deadlock, no livelock) within a step bound,
//! * completed-chunk counts are conserved (every shred did exactly its
//!   share; the mutex-protected counter saw every increment),
//! * the mutex ends free, the barrier releases exactly once, and the work
//!   queue drains.

use misp::shredlib::{SchedulingPolicy, SyncTable, WorkQueue};
use misp::types::{LockId, ShredId};
use proptest::prelude::*;

const MUTEX: LockId = LockId::new(0);
const BARRIER: LockId = LockId::new(1);

/// What a shred does next in the mutex/chunk/barrier state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Must acquire the mutex before touching the shared counter.
    NeedLock,
    /// Holds the mutex; will complete one chunk and release.
    HoldLock,
    /// All chunks done; must arrive at the barrier.
    AtBarrier,
    /// Passed the barrier.
    Done,
}

/// A deterministic xorshift generator: the schedule is a pure function of
/// the proptest-chosen seed, so failures replay exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.0 = x;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

struct Executor {
    table: SyncTable,
    queue: WorkQueue,
    /// Mirror of the queue contents, so the schedule can pick an arbitrary
    /// victim and exercise `WorkQueue::remove`.
    ready: Vec<ShredId>,
    phase: Vec<Phase>,
    chunks_left: Vec<u64>,
    completed_chunks: u64,
    barrier_releases: u64,
}

impl Executor {
    fn new(shreds: usize, chunks: u64, policy: SchedulingPolicy) -> Self {
        let mut table = SyncTable::new();
        table.create_barrier(BARRIER, shreds);
        let mut queue = WorkQueue::new(policy);
        let mut ready = Vec::new();
        for i in 0..shreds {
            let id = ShredId::new(i as u32);
            queue.push(id);
            ready.push(id);
        }
        Executor {
            table,
            queue,
            ready,
            phase: vec![Phase::NeedLock; shreds],
            chunks_left: vec![chunks; shreds],
            completed_chunks: 0,
            barrier_releases: 0,
        }
    }

    fn enqueue(&mut self, shred: ShredId) {
        self.queue.push(shred);
        self.ready.push(shred);
    }

    /// Picks the next shred: usually in queue-policy order, sometimes an
    /// arbitrary victim removed from the middle (a stolen continuation).
    fn pick(&mut self, rng: &mut Rng) -> Option<ShredId> {
        if self.ready.is_empty() {
            assert!(self.queue.is_empty(), "mirror diverged from the queue");
            return None;
        }
        let shred = if rng.below(4) == 0 {
            let victim = self.ready[rng.below(self.ready.len())];
            assert!(self.queue.remove(victim), "victim was in the queue");
            victim
        } else {
            self.queue
                .pop()
                .expect("mirror says the queue is non-empty")
        };
        let position = self
            .ready
            .iter()
            .position(|s| *s == shred)
            .expect("popped shred is mirrored");
        self.ready.remove(position);
        Some(shred)
    }

    /// Runs one step of `shred`'s state machine.  Returns the shreds to make
    /// ready (wake-ups plus the shred itself when it can keep running).
    fn step(&mut self, shred: ShredId) {
        let index = shred.as_usize();
        match self.phase[index] {
            Phase::NeedLock => {
                let outcome = self.table.mutex_lock(MUTEX, shred).expect("lock");
                assert!(outcome.wake.is_empty(), "locking wakes no one");
                if outcome.block {
                    // Parked on the mutex; mutex_unlock will hand ownership
                    // over and wake it straight into HoldLock.
                    self.phase[index] = Phase::HoldLock;
                } else {
                    self.phase[index] = Phase::HoldLock;
                    self.enqueue(shred);
                }
            }
            Phase::HoldLock => {
                // The critical section: one chunk of the shared tally.
                self.completed_chunks += 1;
                self.chunks_left[index] -= 1;
                self.phase[index] = if self.chunks_left[index] == 0 {
                    Phase::AtBarrier
                } else {
                    Phase::NeedLock
                };
                let outcome = self.table.mutex_unlock(MUTEX, shred).expect("unlock");
                assert!(!outcome.block, "unlock never blocks");
                for woken in outcome.wake {
                    // Ownership transferred: the woken waiter holds the mutex.
                    assert_eq!(self.phase[woken.as_usize()], Phase::HoldLock);
                    self.enqueue(woken);
                }
                self.enqueue(shred);
            }
            Phase::AtBarrier => {
                let outcome = self.table.barrier_wait(BARRIER, shred).expect("barrier");
                if outcome.block {
                    return; // parked until the last arrival
                }
                self.barrier_releases += 1;
                self.phase[index] = Phase::Done;
                for woken in outcome.wake {
                    assert_eq!(self.phase[woken.as_usize()], Phase::AtBarrier);
                    self.phase[woken.as_usize()] = Phase::Done;
                }
            }
            Phase::Done => panic!("a finished shred must never be scheduled"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shred counts and schedules through mutex + barrier + work
    /// queue terminate without deadlock and conserve chunk counts.
    #[test]
    fn random_schedules_terminate_and_conserve_chunks(
        case in (1usize..12, 1u64..8, any::<bool>(), any::<u64>())
    ) {
        let (shreds, chunks, lifo, seed) = case;
        let policy = if lifo { SchedulingPolicy::Lifo } else { SchedulingPolicy::Fifo };
        let mut executor = Executor::new(shreds, chunks, policy);
        let mut rng = Rng(seed);

        // Each shred takes 2 steps per chunk (lock, then work+unlock) plus a
        // barrier arrival; anything past a generous multiple is a livelock.
        let step_bound = (shreds as u64 * (2 * chunks + 2) + 8) * 4;
        let mut steps = 0u64;
        while let Some(shred) = executor.pick(&mut rng) {
            executor.step(shred);
            steps += 1;
            prop_assert!(
                steps <= step_bound,
                "no forward progress after {steps} steps ({shreds} shreds x {chunks} chunks)"
            );
        }

        // Termination: every shred passed the barrier.
        for (i, phase) in executor.phase.iter().enumerate() {
            prop_assert_eq!(*phase, Phase::Done, "shred {} did not finish", i);
        }
        // Conservation: the mutex-protected tally saw exactly every chunk.
        prop_assert_eq!(executor.completed_chunks, shreds as u64 * chunks);
        prop_assert!(executor.chunks_left.iter().all(|c| *c == 0));
        // The barrier released exactly once and the queue drained.
        prop_assert_eq!(executor.barrier_releases, 1);
        prop_assert!(executor.queue.is_empty());
        // The mutex ends free: a fresh shred can take it without blocking.
        let mut table = executor.table;
        let probe = ShredId::new(shreds as u32);
        prop_assert!(!table.mutex_lock(MUTEX, probe).expect("probe lock").block);
    }

    /// The queue's bookkeeping is consistent under random schedules: what
    /// was enqueued equals what was drained, and the observed high-water
    /// mark never exceeds the shred count.
    #[test]
    fn queue_accounting_is_conserved(
        case in (1usize..12, 1u64..6, any::<u64>())
    ) {
        let (shreds, chunks, seed) = case;
        let mut executor = Executor::new(shreds, chunks, SchedulingPolicy::Fifo);
        let mut rng = Rng(seed);
        while let Some(shred) = executor.pick(&mut rng) {
            executor.step(shred);
        }
        prop_assert!(executor.queue.max_depth() <= shreds);
        // Every shred is enqueued once at start, once per lock acquisition
        // that did not block plus once per wake, and once per unlock —
        // whatever the schedule, the total must match what the mutex
        // actually admitted: one grant per chunk.
        let grants = shreds as u64 * chunks;
        prop_assert_eq!(executor.queue.total_enqueued(), shreds as u64 + 2 * grants);
        prop_assert_eq!(executor.completed_chunks, grants);
    }
}
