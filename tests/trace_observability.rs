//! Observability regression and property tests: the committed Perfetto
//! golden, trace well-formedness, and interval-sampler invariants.
//!
//! The golden pins the exact Chrome-trace JSON a tiny fixed workload
//! produces.  To regenerate it after an intentional trace-format or engine
//! change:
//!
//! ```text
//! MISP_BLESS_TRACE=1 cargo test --test trace_observability tiny_trace
//! ```

use misp::core::MispTopology;
use misp::mem::AccessPattern;
use misp::os::TimerConfig;
use misp::sim::{chrome_trace_json, SimConfig, SimReport, TraceConfig, TraceEvent, TraceKind};
use misp::types::Cycles;
use misp::workloads::{LocalityProfile, Run, Suite, Workload, WorkloadParams};
use proptest::prelude::*;
use std::path::PathBuf;

fn quick_config(trace: bool, metrics_interval: u64) -> SimConfig {
    SimConfig {
        timer: TimerConfig::new(Cycles::new(3_000_000), 10),
        trace: TraceConfig {
            enabled: trace,
            metrics_interval,
            ..TraceConfig::default()
        },
        ..SimConfig::default()
    }
}

fn tiny_params() -> WorkloadParams {
    WorkloadParams {
        total_work: 40_000,
        serial_fraction: 0.1,
        main_pages: 2,
        worker_pages: 2,
        chunks_per_worker: 4,
        main_syscalls: 1,
        worker_syscalls: 1,
        access_pattern: AccessPattern::Sequential,
        lock_contention: false,
        locality: LocalityProfile::Revisit,
    }
}

fn run_traced(params: WorkloadParams, workers: usize, ams: usize, interval: u64) -> SimReport {
    let workload = Workload::new("trace-fixture", Suite::Rms, params);
    Run::workload(&workload)
        .topology(MispTopology::uniprocessor(ams).unwrap())
        .config(quick_config(true, interval))
        .workers(workers)
        .execute()
        .unwrap()
}

/// The committed golden: a tiny fixed workload's Perfetto export,
/// byte-for-byte.
#[test]
fn tiny_trace_matches_the_committed_golden() {
    let report = run_traced(tiny_params(), 2, 1, 10_000);
    let trace = report.trace.as_ref().expect("trace requested");
    assert_eq!(trace.dropped, 0, "tiny run must fit the default ring");
    let actual = chrome_trace_json(&trace.events);

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/trace_tiny.json");
    if std::env::var_os("MISP_BLESS_TRACE").is_some() {
        std::fs::write(&path, &actual).expect("golden written");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("could not read golden {}: {e}", path.display()));
    assert!(
        expected == actual,
        "trace export no longer matches its golden ({}).\n\
         If the change is intentional, regenerate with:\n  \
         MISP_BLESS_TRACE=1 cargo test --test trace_observability tiny_trace",
        path.display()
    );
}

/// The export is loadable JSON with the Chrome-trace shape: a `traceEvents`
/// array whose metadata names one process track per sequencer.
#[test]
fn trace_export_is_valid_chrome_trace_json() {
    let report = run_traced(tiny_params(), 2, 1, 0);
    let json = chrome_trace_json(&report.trace.as_ref().unwrap().events);
    let value: serde_json::Value = serde_json::from_str(&json).expect("export parses as JSON");
    let events = match value.get("traceEvents") {
        Some(serde_json::Value::Array(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty());
    // One process-name metadata record per sequencer of the 1x2 machine.
    for seq in ["SEQ0", "SEQ1"] {
        assert!(
            json.contains(&format!("\"{seq}\"")),
            "missing per-sequencer track {seq}"
        );
    }
    // Spans carry matched phase markers.
    assert!(json.contains("\"ph\":\"B\""), "no span-begin events");
    assert!(json.contains("\"ph\":\"E\""), "no span-end events");
}

/// Tracing and sampling never perturb the simulation: the traced run's
/// results equal the untraced run's, field for field.
#[test]
fn observers_leave_results_identical() {
    let workload = Workload::new("trace-fixture", Suite::Rms, tiny_params());
    let run = |config: SimConfig| {
        Run::workload(&workload)
            .topology(MispTopology::uniprocessor(1).unwrap())
            .config(config)
            .workers(2)
            .execute()
            .unwrap()
    };
    let plain = run(quick_config(false, 0));
    let traced = run(quick_config(true, 5_000));
    assert_eq!(plain.total_cycles, traced.total_cycles);
    assert_eq!(plain.log_digest, traced.log_digest);
    assert_eq!(plain.completions, traced.completions);
    assert_eq!(plain.stats, traced.stats);
    assert!(plain.trace.is_none() && plain.metrics.is_none());
    assert!(traced.trace.is_some() && traced.metrics.is_some());
}

/// Scans one sequencer's events asserting begin/end pairing for the three
/// strictly-nested span lanes (Ring 0, proxy episodes, suspension windows):
/// an end without a live begin is a malformed trace.
fn assert_spans_pair_up(seq: u32, events: &[TraceEvent]) {
    let mut ring = 0i64;
    let mut proxy = 0i64;
    let mut suspended = 0i64;
    for ev in events.iter().filter(|e| e.seq == seq) {
        let depth = match ev.kind {
            TraceKind::RingEnter => {
                ring += 1;
                ring
            }
            TraceKind::RingExit => {
                ring -= 1;
                ring
            }
            TraceKind::ProxyStart => {
                proxy += 1;
                proxy
            }
            TraceKind::ProxyDone => {
                proxy -= 1;
                proxy
            }
            TraceKind::Suspend => {
                suspended += 1;
                suspended
            }
            TraceKind::Resume => {
                suspended -= 1;
                suspended
            }
            _ => continue,
        };
        assert!(
            depth >= 0,
            "seq {seq}: {:?} at t={} closes a span that never opened",
            ev.kind,
            ev.time
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For a family of small workloads: trace events are time-ordered, span
    /// begin/end events pair up per sequencer, shreds never end before they
    /// start, and interval samples ascend strictly in time on the sampling
    /// grid.
    #[test]
    fn trace_spans_nest_and_samples_ascend(
        case in (2u64..10, 2usize..5, 1usize..4, 0u64..3)
    ) {
        let (chunks, workers, ams, syscalls) = case;
        let params = WorkloadParams {
            chunks_per_worker: chunks,
            worker_syscalls: syscalls,
            ..tiny_params()
        };
        let interval = 7_500u64;
        let report = run_traced(params, workers, ams, interval);
        let trace = report.trace.as_ref().expect("trace requested");
        prop_assert_eq!(trace.dropped, 0, "fixture must fit the ring");

        // Chronological ring order.
        for pair in trace.events.windows(2) {
            prop_assert!(pair[0].time <= pair[1].time, "trace events out of order");
        }

        // Span pairing per sequencer; shred lifetime globally.
        for seq in 0..=(ams as u32) {
            assert_spans_pair_up(seq, &trace.events);
        }
        let mut live_shreds = 0i64;
        for ev in &trace.events {
            match ev.kind {
                TraceKind::ShredStart => live_shreds += 1,
                TraceKind::ShredEnd => live_shreds -= 1,
                _ => {}
            }
            prop_assert!(live_shreds >= 0, "a shred ended before any started");
        }

        // Samples strictly ascend on the sampling grid and stay within the
        // run.
        let metrics = report.metrics.as_ref().expect("sampler requested");
        prop_assert_eq!(metrics.interval, interval);
        let samples = &metrics.samples;
        prop_assert!(!samples.is_empty(), "run long enough to sample");
        for pair in samples.windows(2) {
            prop_assert!(pair[0].t < pair[1].t, "sample times must strictly ascend");
        }
        for s in samples {
            prop_assert_eq!(s.t % interval, 0, "samples land on the interval grid");
            prop_assert!(s.t <= report.total_cycles.as_u64() + interval);
        }
    }
}
