//! Allocation audit of the engine's steady-state hot loop.
//!
//! A counting global allocator wraps the system allocator.  The workload and
//! machine are fully constructed *before* counting starts, so the measurement
//! covers only `MispMachine::run` — the event loop and `step_sequencer`.  We
//! run the same machine shape twice, with the second run executing twice the
//! operations; if anything on the per-operation path allocated, the second
//! run would allocate more by an amount proportional to the extra operations
//! (hundreds of thousands).  A small fixed tolerance covers amortized
//! container growth (a retained buffer doubling once more in the longer run
//! is O(log n) events per run, not O(ops)).

use misp::core::{MispMachine, MispTopology};
use misp::isa::ProgramLibrary;
use misp::os::TimerConfig;
use misp::sim::{Event, FleetEngine, Mailbox, SimConfig, TraceConfig};
use misp::types::{Cycles, MachineId};
use misp::workloads::{LocalityProfile, Suite, Workload, WorkloadParams};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn params(chunks: u64) -> WorkloadParams {
    WorkloadParams {
        total_work: 200_000_000,
        serial_fraction: 0.05,
        main_pages: 16,
        worker_pages: 8,
        chunks_per_worker: chunks,
        main_syscalls: 2,
        worker_syscalls: 0,
        access_pattern: misp::mem::AccessPattern::Sequential,
        lock_contention: false,
        locality: LocalityProfile::Revisit,
    }
}

/// Builds the machine outside the measurement, then runs it and returns
/// (allocations during the run only, executed ops).
fn measured_run(chunks: u64) -> (u64, u64) {
    measured_run_with_trace(chunks, TraceConfig::default())
}

fn measured_run_with_trace(chunks: u64, trace: TraceConfig) -> (u64, u64) {
    let workload = Workload::new("alloc-audit", Suite::Rms, params(chunks));
    let topo = MispTopology::uniprocessor(3).unwrap();
    let config = SimConfig {
        timer: TimerConfig::new(Cycles::new(3_000_000), 10),
        trace,
        ..SimConfig::default()
    };
    let mut library = ProgramLibrary::new();
    let scheduler = workload.build(&mut library, 4);
    let mut machine = MispMachine::new(topo, config, library);
    machine.add_process(workload.name(), Box::new(scheduler), Some(0));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let report = machine.run().unwrap();
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    let ops = report.stats.per_sequencer.iter().map(|s| s.ops).sum();
    (during, ops)
}

#[test]
fn steady_state_step_loop_does_not_allocate() {
    // Warm up allocator internals and any lazily-initialized state so both
    // measured runs start from the same baseline.  The default config has
    // tracing compiled in but disabled — the configuration every figure and
    // golden run uses — so this audit also pins the "off means free" claim.
    assert!(
        TraceConfig::default().is_off(),
        "the audited default must be the tracing-off configuration"
    );
    let _ = measured_run(1_000);

    let (alloc_1x, ops_1x) = measured_run(100_000);
    let (alloc_2x, ops_2x) = measured_run(200_000);

    assert!(
        ops_2x > ops_1x + 100_000,
        "doubling the chunks must add real operations (got {ops_1x} vs {ops_2x})"
    );
    // Allocations may not scale with operations.  The slack absorbs one-off
    // amortized growth (a retained Vec doubling once more in the longer run);
    // a single allocation per operation would blow past it ten-thousand-fold.
    let delta = alloc_2x.abs_diff(alloc_1x);
    assert!(
        delta <= 64,
        "steady-state hot loop allocated: {alloc_1x} allocations for {ops_1x} ops vs \
         {alloc_2x} for {ops_2x} ops (delta {delta})"
    );
}

/// Builds a 2-machine fleet outside the measurement, runs it under
/// conservative synchronization and returns (allocations during the run
/// only, executed ops across the fleet).
fn measured_fleet_run(chunks: u64) -> (u64, u64) {
    let topo = MispTopology::uniprocessor(3).unwrap();
    let config = SimConfig {
        timer: TimerConfig::new(Cycles::new(3_000_000), 10),
        ..SimConfig::default()
    };
    let mut fleet = FleetEngine::new(Cycles::new(1_000));
    for _ in 0..2 {
        let workload = Workload::new("alloc-audit", Suite::Rms, params(chunks));
        let mut library = ProgramLibrary::new();
        let scheduler = workload.build(&mut library, 4);
        let mut machine = MispMachine::new(topo.clone(), config, library);
        machine.add_process(workload.name(), Box::new(scheduler), Some(0));
        fleet.add_machine(machine.into_sim_machine());
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let report = fleet.run_fleet().unwrap();
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    let ops = report
        .reports
        .iter()
        .flat_map(|r| r.stats.per_sequencer.iter())
        .map(|s| s.ops)
        .sum();
    (during, ops)
}

/// The fleet steady state is as allocation-free as the solo engine: each
/// shard steps through its preallocated queue, and the synchronizer's
/// per-window bookkeeping (horizon scan, due-mail buffer) reuses fixed
/// storage.  Doubling every machine's work must not move the allocation
/// count by more than the amortized-growth slack.
#[test]
fn fleet_steady_state_step_loop_does_not_allocate() {
    let _ = measured_fleet_run(1_000);

    let (alloc_1x, ops_1x) = measured_fleet_run(100_000);
    let (alloc_2x, ops_2x) = measured_fleet_run(200_000);

    assert!(
        ops_2x > ops_1x + 200_000,
        "doubling the chunks must add real operations on both shards \
         (got {ops_1x} vs {ops_2x})"
    );
    let delta = alloc_2x.abs_diff(alloc_1x);
    assert!(
        delta <= 64,
        "fleet steady-state loop allocated: {alloc_1x} allocations for {ops_1x} ops vs \
         {alloc_2x} for {ops_2x} ops (delta {delta})"
    );
}

/// Posting into the cross-machine mailbox within its preallocated capacity
/// is allocation-free, and so is draining through a caller-reused buffer —
/// the properties the fleet's per-window delivery path relies on.
#[test]
fn mailbox_posting_and_draining_do_not_allocate_within_capacity() {
    let mut mailbox = Mailbox::with_capacity(256);
    let mut buffer = Vec::with_capacity(256);
    // Warm both buffers past their first use.
    mailbox.post(
        MachineId::new(0),
        MachineId::new(1),
        Cycles::new(1),
        Event::Sample,
    );
    mailbox.take_due(MachineId::new(1), None, &mut buffer);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 0..8u64 {
        for i in 0..200u64 {
            mailbox.post(
                MachineId::new(0),
                MachineId::new((i % 2) as u32),
                Cycles::new(round * 1_000 + i),
                Event::Sample,
            );
        }
        for machine in 0..2u32 {
            mailbox.take_due(MachineId::new(machine), None, &mut buffer);
        }
    }
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(mailbox.is_empty());
    assert_eq!(
        during, 0,
        "mailbox traffic within capacity must not allocate ({during} allocations)"
    );
}

/// The same audit with the trace ring *enabled*: the ring is preallocated at
/// machine construction and records by overwriting its oldest slot, so even
/// a traced run must not allocate per operation or per trace event.
#[test]
fn steady_state_step_loop_does_not_allocate_while_tracing() {
    let traced = TraceConfig {
        enabled: true,
        ..TraceConfig::default()
    };
    let _ = measured_run_with_trace(1_000, traced);

    let (alloc_1x, ops_1x) = measured_run_with_trace(100_000, traced);
    let (alloc_2x, ops_2x) = measured_run_with_trace(200_000, traced);

    assert!(
        ops_2x > ops_1x + 100_000,
        "doubling the chunks must add real operations (got {ops_1x} vs {ops_2x})"
    );
    let delta = alloc_2x.abs_diff(alloc_1x);
    assert!(
        delta <= 64,
        "traced hot loop allocated: {alloc_1x} allocations for {ops_1x} ops vs \
         {alloc_2x} for {ops_2x} ops (delta {delta})"
    );
}
